package exp

import (
	"encoding/json"
	"fmt"
	"os"

	"denovosync/internal/apps"
	"denovosync/internal/chaos"
	"denovosync/internal/kernels"
	"denovosync/internal/sim"
)

// Plan is an expanded experiment grid: an ordered list of runs plus the
// identity used for rendering. Run order is the canonical row order of
// every merged artifact (table, CSV), independent of execution order.
type Plan struct {
	ID    string `json:"id"`
	Title string `json:"title,omitempty"`
	Cores int    `json:"cores,omitempty"`
	Runs  []Run  `json:"runs"`
}

// IsChaos reports whether the plan is a chaos grid (manifests cannot mix
// chaos and figure runs, so the first run's kind decides).
func (p Plan) IsChaos() bool {
	return len(p.Runs) > 0 && p.Runs[0].Kind == KindChaos
}

// Duplicate grid points (identical configuration under different labels
// — e.g. the hwparams ablation's "paper" and "inc=1" variants at 16
// cores, where the paper increment IS 1) are legal: the engine executes
// each distinct key once and every row renders from the shared record.

// Manifest is the declarative, user-authored form of a grid: axes that
// expand into the cross-product of runs. Empty axes take paper defaults.
type Manifest struct {
	Name  string `json:"name"`
	Title string `json:"title,omitempty"`

	// Workload axes. At least one of Kernels/Apps must be non-empty.
	Kernels []string `json:"kernels,omitempty"`
	Apps    []string `json:"apps,omitempty"`

	// Protocols defaults to the paper's comparison set [M, DS0, DS].
	Protocols []string `json:"protocols,omitempty"`

	// Cores defaults to [16]. Apps ignore it (each app pins its own
	// paper core count) unless ForceCores is set.
	Cores      []int `json:"cores,omitempty"`
	ForceCores bool  `json:"force_cores,omitempty"`

	// Iters defaults to [0] (per-kernel paper default).
	Iters []int `json:"iters,omitempty"`

	// Gaps is the non-synch dummy-computation axis in cycles; each gap g
	// expands to the sweep window [g, g+g/4+1). 0 = the paper default
	// window for the core count. Defaults to [0].
	Gaps []int64 `json:"gaps,omitempty"`

	// BackoffBits/Increments sweep the DeNovoSync hardware-backoff
	// parameters; 0 = the Table 1 value. Both default to [0].
	BackoffBits []uint  `json:"backoff_bits,omitempty"`
	Increments  []int64 `json:"increments,omitempty"`

	// EqChecks: nil keeps the as-adapted default (-1 → 2 checks);
	// 0 is the §7.1.3 reduced-equality-check ablation.
	EqChecks *int `json:"eq_checks,omitempty"`

	// Scale divides app workloads (1 = paper scale).
	Scale int `json:"scale,omitempty"`

	// Chaos switches the manifest to a chaos grid: every kernel ×
	// protocol-config × cores × iters × seed expands to one
	// self-contained chaos run (perturbed + baseline + differential
	// check; see internal/chaos). With Chaos set, Protocols names chaos
	// protocol configurations (default [M, DS0, DS, DSsig]) and Apps
	// must be empty; the ablation axes below do not apply.
	Chaos *ChaosAxis `json:"chaos,omitempty"`

	// Grid-wide ablation switches (applied to every run).
	SWBackoffMin    int64 `json:"sw_backoff_min,omitempty"`
	SWBackoffMax    int64 `json:"sw_backoff_max,omitempty"`
	NoPadding       bool  `json:"no_padding,omitempty"`
	InvalidateAll   bool  `json:"invalidate_all,omitempty"`
	ForceMCS        bool  `json:"force_mcs,omitempty"`
	UseSignatures   bool  `json:"use_signatures,omitempty"`
	Signatures      bool  `json:"signatures,omitempty"`
	LineGranularity bool  `json:"line_granularity,omitempty"`
	LinkContention  bool  `json:"link_contention,omitempty"`
}

// ChaosAxis is the seed/perturbation axis of a chaos manifest.
type ChaosAxis struct {
	// Seeds is the number of jitter seeds per grid point (>= 1).
	Seeds int `json:"seeds"`
	// SeedBase is the first seed (default 1).
	SeedBase uint64 `json:"seed_base,omitempty"`
	// Jitter bounds the per-message delay (cycles; 0 = chaos default).
	Jitter int64 `json:"jitter,omitempty"`
	// Watchdog is the deadlock budget (cycles; 0 = chaos default).
	Watchdog int64 `json:"watchdog,omitempty"`
}

// LoadManifest reads and expands a manifest file.
func LoadManifest(path string) (Plan, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Plan{}, err
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return Plan{}, fmt.Errorf("exp: parsing manifest %s: %w", path, err)
	}
	return m.Expand()
}

func orDefaultInts(axis, def []int) []int {
	if len(axis) == 0 {
		return def
	}
	return axis
}

// Expand validates the axes and produces the cross-product plan.
func (m Manifest) Expand() (Plan, error) {
	if m.Name == "" {
		return Plan{}, fmt.Errorf("exp: manifest needs a name")
	}
	if len(m.Kernels) == 0 && len(m.Apps) == 0 {
		return Plan{}, fmt.Errorf("exp: manifest %q selects no kernels or apps", m.Name)
	}
	if m.Chaos != nil {
		return m.expandChaos()
	}
	protocols := m.Protocols
	if len(protocols) == 0 {
		protocols = []string{"M", "DS0", "DS"}
	}
	for _, p := range protocols {
		if _, err := ParseProtocol(p); err != nil {
			return Plan{}, err
		}
	}
	cores := orDefaultInts(m.Cores, []int{16})
	for _, c := range cores {
		if c != 16 && c != 64 {
			return Plan{}, fmt.Errorf("exp: manifest %q: unsupported core count %d (want 16 or 64)", m.Name, c)
		}
	}
	iters := orDefaultInts(m.Iters, []int{0})
	gaps := m.Gaps
	if len(gaps) == 0 {
		gaps = []int64{0}
	}
	bits := m.BackoffBits
	if len(bits) == 0 {
		bits = []uint{0}
	}
	incs := m.Increments
	if len(incs) == 0 {
		incs = []int64{0}
	}
	eq := -1
	if m.EqChecks != nil {
		eq = *m.EqChecks
	}

	base := Run{
		EqChecks:        eq,
		SWBackoffMin:    sim.Cycle(m.SWBackoffMin),
		SWBackoffMax:    sim.Cycle(m.SWBackoffMax),
		NoPadding:       m.NoPadding,
		InvalidateAll:   m.InvalidateAll,
		ForceMCS:        m.ForceMCS,
		UseSignatures:   m.UseSignatures,
		Signatures:      m.Signatures,
		LineGranularity: m.LineGranularity,
		LinkContention:  m.LinkContention,
	}

	p := Plan{ID: m.Name, Title: m.Title}
	if len(cores) == 1 {
		p.Cores = cores[0]
	}
	for _, c := range cores {
		for _, b := range bits {
			for _, inc := range incs {
				for _, it := range iters {
					for _, gap := range gaps {
						for _, id := range m.Kernels {
							k, ok := kernels.ByID(id)
							if !ok {
								return Plan{}, fmt.Errorf("exp: manifest %q: unknown kernel %q", m.Name, id)
							}
							for _, prot := range protocols {
								r := base
								r.Kind, r.Workload, r.Display = KindKernel, k.ID, k.Name
								r.Protocol, r.Cores, r.Iters = prot, c, it
								r.BackoffBits, r.Increment = b, sim.Cycle(inc)
								if gap > 0 {
									r.GapMin = sim.Cycle(gap)
									r.GapMax = sim.Cycle(gap) + sim.Cycle(gap)/4 + 1
								}
								p.Runs = append(p.Runs, r)
							}
						}
					}
				}
				for _, id := range m.Apps {
					a, ok := apps.ByID(id)
					if !ok {
						return Plan{}, fmt.Errorf("exp: manifest %q: unknown app %q", m.Name, id)
					}
					appCores := a.DefaultCores
					if m.ForceCores {
						appCores = c
					} else if len(cores) > 1 {
						return Plan{}, fmt.Errorf("exp: manifest %q: apps pin their own core count; use force_cores to override", m.Name)
					}
					for _, prot := range protocols {
						r := base
						r.Kind, r.Workload, r.Display = KindApp, a.ID, a.Name
						r.Protocol, r.Cores, r.Scale = prot, appCores, m.Scale
						r.BackoffBits, r.Increment = b, sim.Cycle(inc)
						p.Runs = append(p.Runs, r)
					}
				}
			}
		}
	}
	return p, nil
}

// expandChaos produces the chaos grid: kernels × protocol configs ×
// cores × iters × seeds.
func (m Manifest) expandChaos() (Plan, error) {
	ax := m.Chaos
	if len(m.Apps) > 0 {
		return Plan{}, fmt.Errorf("exp: manifest %q: chaos grids support kernels only", m.Name)
	}
	if ax.Seeds < 1 {
		return Plan{}, fmt.Errorf("exp: manifest %q: chaos.seeds must be >= 1", m.Name)
	}
	configs := m.Protocols
	if len(configs) == 0 {
		for _, c := range chaos.Configs() {
			configs = append(configs, c.Name)
		}
	}
	for _, name := range configs {
		if _, ok := chaos.ConfigByName(name); !ok {
			return Plan{}, fmt.Errorf("exp: manifest %q: unknown chaos protocol config %q (want M, DS0, DS or DSsig)", m.Name, name)
		}
	}
	cores := orDefaultInts(m.Cores, []int{16})
	for _, c := range cores {
		if c != 16 && c != 64 {
			return Plan{}, fmt.Errorf("exp: manifest %q: unsupported core count %d (want 16 or 64)", m.Name, c)
		}
	}
	iters := orDefaultInts(m.Iters, []int{0})
	seedBase := ax.SeedBase
	if seedBase == 0 {
		seedBase = 1
	}

	p := Plan{ID: m.Name, Title: m.Title}
	if len(cores) == 1 {
		p.Cores = cores[0]
	}
	for _, c := range cores {
		for _, it := range iters {
			for _, id := range m.Kernels {
				k, ok := kernels.ByID(id)
				if !ok {
					return Plan{}, fmt.Errorf("exp: manifest %q: unknown kernel %q", m.Name, id)
				}
				for _, cfg := range configs {
					for s := 0; s < ax.Seeds; s++ {
						p.Runs = append(p.Runs, Run{
							Kind: KindChaos, Workload: k.ID, Display: k.Name,
							Protocol: cfg, Cores: c, Iters: it, EqChecks: -1,
							ChaosSeed:     seedBase + uint64(s),
							ChaosJitter:   sim.Cycle(ax.Jitter),
							ChaosWatchdog: sim.Cycle(ax.Watchdog),
						})
					}
				}
			}
		}
	}
	return p, nil
}
