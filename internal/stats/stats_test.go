package stats

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
	"time"

	"denovosync/internal/proto"
	"denovosync/internal/sim"
)

func TestCoreTimeAccumulation(t *testing.T) {
	var ct CoreTime
	ct.Add(Compute, 10)
	ct.Add(Compute, 5)
	ct.Add(MemStall, 20)
	if ct.Cycles[Compute] != 15 || ct.Busy() != 35 {
		t.Fatalf("accumulation broken: %+v", ct)
	}
}

func TestAggregate(t *testing.T) {
	rs := &RunStats{
		Protocol: "MESI",
		Workload: "w",
		Cores:    2,
		PerCore: []CoreTime{
			{Cycles: [NumTimeComponents]sim.Cycle{10, 20, 30, 0, 0, 0}, Finish: 100},
			{Cycles: [NumTimeComponents]sim.Cycle{20, 40, 10, 0, 0, 0}, Finish: 150},
		},
		Traffic: [proto.NumMsgClasses]uint64{100, 50, 0, 25, 0},
	}
	rs.Aggregate()
	if rs.ExecTime != 150 {
		t.Fatalf("ExecTime = %d (want max finish)", rs.ExecTime)
	}
	if rs.Time[NonSynch] != 15 || rs.Time[Compute] != 30 || rs.Time[MemStall] != 20 {
		t.Fatalf("averaged breakdown wrong: %v", rs.Time)
	}
	if rs.TotalTraffic != 175 {
		t.Fatalf("TotalTraffic = %d", rs.TotalTraffic)
	}
	if rs.TimeTotal() != 65 {
		t.Fatalf("TimeTotal = %f", rs.TimeTotal())
	}
}

func TestAggregateEmpty(t *testing.T) {
	rs := &RunStats{}
	rs.Aggregate() // must not panic
	if rs.ExecTime != 0 {
		t.Fatal("empty aggregate produced time")
	}
}

func TestBusyZeroValue(t *testing.T) {
	var ct CoreTime
	if ct.Busy() != 0 {
		t.Fatalf("zero CoreTime is busy: %d", ct.Busy())
	}
}

// TestAggregateAllIdleCores: cores that finished without charging any
// component (e.g. a workload where only thread 0 does work) still set
// the makespan, and the averaged breakdown stays zero.
func TestAggregateAllIdleCores(t *testing.T) {
	rs := &RunStats{
		Cores:   2,
		PerCore: []CoreTime{{Finish: 40}, {Finish: 75}},
	}
	rs.Aggregate()
	if rs.ExecTime != 75 {
		t.Fatalf("ExecTime = %d, want the max finish 75", rs.ExecTime)
	}
	if rs.TimeTotal() != 0 || rs.TotalTraffic != 0 {
		t.Fatalf("idle cores produced time/traffic: %v / %d", rs.Time, rs.TotalTraffic)
	}
}

// TestAggregateIsRepeatable: Aggregate must be safe to call twice
// (ExecTime keeps the max, TotalTraffic is recomputed, not re-added).
func TestAggregateIsRepeatable(t *testing.T) {
	rs := &RunStats{
		PerCore: []CoreTime{{Cycles: [NumTimeComponents]sim.Cycle{3, 0, 0, 0, 0, 0}, Finish: 10}},
		Traffic: [proto.NumMsgClasses]uint64{5, 0, 0, 0, 0},
	}
	rs.Aggregate()
	rs.Aggregate()
	if rs.TotalTraffic != 5 || rs.Time[NonSynch] != 3 || rs.ExecTime != 10 {
		t.Fatalf("second Aggregate changed results: %+v", rs)
	}
}

func TestSetWallTime(t *testing.T) {
	rs := &RunStats{Events: 1000}
	if rs.WallTime != 0 || rs.EventsPerSec != 0 {
		t.Fatal("zero value has wall-time diagnostics")
	}
	if s := rs.String(); strings.Contains(s, "wall") {
		t.Errorf("String() shows wall time before SetWallTime:\n%s", s)
	}

	rs.SetWallTime(0) // a degenerate (clock-resolution) duration
	if rs.EventsPerSec != 0 {
		t.Errorf("zero duration produced a rate: %f", rs.EventsPerSec)
	}

	rs.SetWallTime(2 * time.Second)
	if rs.EventsPerSec != 500 {
		t.Errorf("EventsPerSec = %f, want 500", rs.EventsPerSec)
	}
	if s := rs.String(); !strings.Contains(s, "wall") {
		t.Errorf("String() omits wall time after SetWallTime:\n%s", s)
	}
}

// TestRunStatsJSONRoundTrip pins the serialization the exp journal
// depends on: every field — including non-integral float64 averages —
// must survive encoding/json exactly, so a resumed grid renders
// byte-identical output from journaled records.
func TestRunStatsJSONRoundTrip(t *testing.T) {
	rs := &RunStats{
		Protocol: "DeNovoSync", Workload: "msq", Cores: 3,
		PerCore: []CoreTime{
			{Cycles: [NumTimeComponents]sim.Cycle{1, 0, 0, 0, 0, 0}, Finish: 7},
			{Cycles: [NumTimeComponents]sim.Cycle{0, 1, 0, 0, 0, 0}, Finish: 9},
			{Cycles: [NumTimeComponents]sim.Cycle{0, 0, 2, 0, 0, 0}, Finish: 8},
		},
		Traffic:  [proto.NumMsgClasses]uint64{10, 20, 30, 40, 50},
		L1Hits:   123,
		L1Misses: 4,
		Events:   99999,
	}
	rs.Aggregate() // Time components become 1/3, 1/3, 2/3: non-integral averages
	b, err := json.Marshal(rs)
	if err != nil {
		t.Fatal(err)
	}
	got := &RunStats{}
	if err := json.Unmarshal(b, got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, rs) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, rs)
	}
}

func TestStringContainsEssentials(t *testing.T) {
	rs := &RunStats{
		Protocol: "DeNovoSync", Workload: "msq", Cores: 16,
		PerCore: []CoreTime{{Cycles: [NumTimeComponents]sim.Cycle{0, 5, 7, 0, 3, 0}, Finish: 99}},
		Traffic: [proto.NumMsgClasses]uint64{1, 2, 3, 0, 4},
	}
	rs.Aggregate()
	s := rs.String()
	for _, want := range []string{"msq", "DeNovoSync", "hw backoff", "SYNCH", "99"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() missing %q in:\n%s", want, s)
		}
	}
}

func TestComponentNames(t *testing.T) {
	names := map[TimeComponent]string{
		NonSynch: "non-synch", Compute: "compute", MemStall: "memory stall",
		SWBackoff: "sw backoff", HWBackoff: "hw backoff", BarrierStall: "barrier",
	}
	for c, want := range names {
		if c.String() != want {
			t.Fatalf("%d.String() = %q, want %q", c, c.String(), want)
		}
	}
}
