package stats

import (
	"strings"
	"testing"

	"denovosync/internal/proto"
	"denovosync/internal/sim"
)

func TestCoreTimeAccumulation(t *testing.T) {
	var ct CoreTime
	ct.Add(Compute, 10)
	ct.Add(Compute, 5)
	ct.Add(MemStall, 20)
	if ct.Cycles[Compute] != 15 || ct.Busy() != 35 {
		t.Fatalf("accumulation broken: %+v", ct)
	}
}

func TestAggregate(t *testing.T) {
	rs := &RunStats{
		Protocol: "MESI",
		Workload: "w",
		Cores:    2,
		PerCore: []CoreTime{
			{Cycles: [NumTimeComponents]sim.Cycle{10, 20, 30, 0, 0, 0}, Finish: 100},
			{Cycles: [NumTimeComponents]sim.Cycle{20, 40, 10, 0, 0, 0}, Finish: 150},
		},
		Traffic: [proto.NumMsgClasses]uint64{100, 50, 0, 25, 0},
	}
	rs.Aggregate()
	if rs.ExecTime != 150 {
		t.Fatalf("ExecTime = %d (want max finish)", rs.ExecTime)
	}
	if rs.Time[NonSynch] != 15 || rs.Time[Compute] != 30 || rs.Time[MemStall] != 20 {
		t.Fatalf("averaged breakdown wrong: %v", rs.Time)
	}
	if rs.TotalTraffic != 175 {
		t.Fatalf("TotalTraffic = %d", rs.TotalTraffic)
	}
	if rs.TimeTotal() != 65 {
		t.Fatalf("TimeTotal = %f", rs.TimeTotal())
	}
}

func TestAggregateEmpty(t *testing.T) {
	rs := &RunStats{}
	rs.Aggregate() // must not panic
	if rs.ExecTime != 0 {
		t.Fatal("empty aggregate produced time")
	}
}

func TestStringContainsEssentials(t *testing.T) {
	rs := &RunStats{
		Protocol: "DeNovoSync", Workload: "msq", Cores: 16,
		PerCore: []CoreTime{{Cycles: [NumTimeComponents]sim.Cycle{0, 5, 7, 0, 3, 0}, Finish: 99}},
		Traffic: [proto.NumMsgClasses]uint64{1, 2, 3, 0, 4},
	}
	rs.Aggregate()
	s := rs.String()
	for _, want := range []string{"msq", "DeNovoSync", "hw backoff", "SYNCH", "99"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() missing %q in:\n%s", want, s)
		}
	}
}

func TestComponentNames(t *testing.T) {
	names := map[TimeComponent]string{
		NonSynch: "non-synch", Compute: "compute", MemStall: "memory stall",
		SWBackoff: "sw backoff", HWBackoff: "hw backoff", BarrierStall: "barrier",
	}
	for c, want := range names {
		if c.String() != want {
			t.Fatalf("%d.String() = %q, want %q", c, c.String(), want)
		}
	}
}
