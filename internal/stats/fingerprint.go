package stats

import (
	"fmt"
	"strings"
)

// Fingerprint renders every simulated quantity of a run in a canonical
// text form, down to per-core cycle breakdowns. Two runs are "bitwise
// identical" iff their fingerprints match; host-dependent diagnostics
// (WallTime, EventsPerSec) are excluded. Both the machine determinism
// suite and the pdes serial-vs-parallel differential battery compare
// runs through this one renderer.
func Fingerprint(rs *RunStats) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s/%s cores=%d exec=%d events=%d l1=%d/%d traffic=%d",
		rs.Workload, rs.Protocol, rs.Cores, rs.ExecTime, rs.Events, rs.L1Hits, rs.L1Misses, rs.TotalTraffic)
	for c := TimeComponent(0); c < NumTimeComponents; c++ {
		fmt.Fprintf(&b, " t%d=%.3f", c, rs.Time[c])
	}
	for cl, v := range rs.Traffic {
		fmt.Fprintf(&b, " n%d=%d", cl, v)
	}
	for i, ct := range rs.PerCore {
		fmt.Fprintf(&b, " c%d=%v/%d", i, ct.Cycles, ct.Finish)
	}
	return b.String()
}
