// Package stats defines the execution-time and traffic accounting used to
// reproduce the stacked-bar breakdowns in Figures 3–7 of the paper.
package stats

import (
	"fmt"
	"strings"
	"time"

	"denovosync/internal/proto"
	"denovosync/internal/sim"
)

// TimeComponent buckets core cycles the way the paper's execution-time bars
// do (§7.1): non-synch dummy computation, kernel compute (including spin
// hits), memory stall, software backoff, hardware backoff, barrier stall.
type TimeComponent int

const (
	NonSynch TimeComponent = iota
	Compute
	MemStall
	SWBackoff
	HWBackoff
	BarrierStall
	NumTimeComponents
)

func (c TimeComponent) String() string {
	switch c {
	case NonSynch:
		return "non-synch"
	case Compute:
		return "compute"
	case MemStall:
		return "memory stall"
	case SWBackoff:
		return "sw backoff"
	case HWBackoff:
		return "hw backoff"
	case BarrierStall:
		return "barrier"
	}
	return fmt.Sprintf("TimeComponent(%d)", int(c))
}

// CoreTime is one core's cycle breakdown.
type CoreTime struct {
	Cycles [NumTimeComponents]sim.Cycle
	Finish sim.Cycle
}

// Add charges n cycles to component c.
func (t *CoreTime) Add(c TimeComponent, n sim.Cycle) { t.Cycles[c] += n }

// Busy returns the sum of all components.
func (t *CoreTime) Busy() sim.Cycle {
	var b sim.Cycle
	for _, v := range t.Cycles {
		b += v
	}
	return b
}

// RunStats is the complete result of one simulated run.
type RunStats struct {
	Protocol string
	Workload string
	Cores    int

	// ExecTime is the makespan: the cycle at which the last core finished.
	ExecTime sim.Cycle

	// Time is the per-component breakdown averaged over cores (cycles).
	Time [NumTimeComponents]float64

	// PerCore retains each core's raw breakdown for detailed analysis.
	PerCore []CoreTime

	// Traffic is flit link-crossings per message class; TotalTraffic sums.
	Traffic      [proto.NumMsgClasses]uint64
	TotalTraffic uint64

	// L1 aggregate counters across all cores.
	L1Hits, L1Misses uint64

	// Events is the engine's dispatched event count (diagnostics).
	Events uint64

	// WallTime is the host-side duration of the simulation, and
	// EventsPerSec the resulting engine throughput. Host-dependent
	// diagnostics: excluded from CSV output, goldens, and fingerprints.
	WallTime     time.Duration
	EventsPerSec float64
}

// SetWallTime records the host-side runtime and derives throughput.
func (r *RunStats) SetWallTime(d time.Duration) {
	r.WallTime = d
	if s := d.Seconds(); s > 0 {
		r.EventsPerSec = float64(r.Events) / s
	}
}

// Aggregate fills the averaged Time breakdown and totals from PerCore and
// the traffic array.
func (r *RunStats) Aggregate() {
	if len(r.PerCore) == 0 {
		return
	}
	var sums [NumTimeComponents]sim.Cycle
	for _, ct := range r.PerCore {
		for c, v := range ct.Cycles {
			sums[c] += v
		}
		if ct.Finish > r.ExecTime {
			r.ExecTime = ct.Finish
		}
	}
	n := float64(len(r.PerCore))
	for c := range sums {
		r.Time[c] = float64(sums[c]) / n
	}
	r.TotalTraffic = 0
	for _, v := range r.Traffic {
		r.TotalTraffic += v
	}
}

// TimeTotal returns the averaged busy cycles (sum of Time components).
func (r *RunStats) TimeTotal() float64 {
	var t float64
	for _, v := range r.Time {
		t += v
	}
	return t
}

// String renders a compact human-readable summary.
func (r *RunStats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s/%s (%d cores): exec=%d cycles, traffic=%d flit-hops\n",
		r.Workload, r.Protocol, r.Cores, r.ExecTime, r.TotalTraffic)
	fmt.Fprintf(&b, "  time: ")
	for c := TimeComponent(0); c < NumTimeComponents; c++ {
		if r.Time[c] > 0 {
			fmt.Fprintf(&b, "%s=%.0f ", c, r.Time[c])
		}
	}
	fmt.Fprintf(&b, "\n  traffic: ")
	for cl := proto.MsgClass(0); cl < proto.NumMsgClasses; cl++ {
		if r.Traffic[cl] > 0 {
			fmt.Fprintf(&b, "%s=%d ", cl, r.Traffic[cl])
		}
	}
	fmt.Fprintf(&b, "\n  L1: %d hits / %d misses, %d events", r.L1Hits, r.L1Misses, r.Events)
	if r.WallTime > 0 {
		fmt.Fprintf(&b, " (%.2fs wall, %.2fM events/s)", r.WallTime.Seconds(), r.EventsPerSec/1e6)
	}
	return b.String()
}
