package cache

import "denovosync/internal/proto"

// MSHREntry tracks one outstanding miss. Waiters are callbacks to run when
// the miss resolves; Parked holds protocol messages that arrived for the
// address while the miss was in flight (DeNovoSync parks forwarded
// registration requests here — the distributed registration queue of §4.1).
type MSHREntry struct {
	Addr    proto.Addr // word address for DeNovo, line address for MESI
	Waiters []func()
	Parked  []interface{}

	// Tag lets the protocol record what kind of miss is outstanding.
	Tag int
}

// MSHR is a table of outstanding misses keyed by address.
type MSHR struct {
	entries map[proto.Addr]*MSHREntry
}

// NewMSHR returns an empty MSHR table.
func NewMSHR() *MSHR {
	return &MSHR{entries: make(map[proto.Addr]*MSHREntry)}
}

// Lookup returns the entry for addr, or nil.
func (m *MSHR) Lookup(addr proto.Addr) *MSHREntry { return m.entries[addr] }

// Allocate creates an entry for addr. It panics if one already exists:
// the protocol must coalesce via Lookup first.
func (m *MSHR) Allocate(addr proto.Addr) *MSHREntry {
	if m.entries[addr] != nil {
		panic("cache: MSHR double allocation")
	}
	e := &MSHREntry{Addr: addr}
	m.entries[addr] = e
	return e
}

// Free removes the entry and returns it so the protocol can drain waiters
// and parked messages after updating cache state.
func (m *MSHR) Free(addr proto.Addr) *MSHREntry {
	e := m.entries[addr]
	if e == nil {
		panic("cache: MSHR free of absent entry")
	}
	delete(m.entries, addr)
	return e
}

// Len returns the number of outstanding entries.
func (m *MSHR) Len() int { return len(m.entries) }

// ForEach visits all outstanding entries.
func (m *MSHR) ForEach(fn func(*MSHREntry)) {
	for _, e := range m.entries {
		fn(e)
	}
}
