package cache

import (
	"sort"

	"denovosync/internal/proto"
)

// MSHRState labels what kind of miss an entry tracks. The value space is
// owned by the protocol controller; declaring miss kinds with this type
// puts switches over them under the simlint exhauststate analyzer.
type MSHRState int

// MSHREntry tracks one outstanding miss. Waiters are callbacks to run when
// the miss resolves; Parked holds protocol messages that arrived for the
// address while the miss was in flight (DeNovoSync parks forwarded
// registration requests here — the distributed registration queue of §4.1).
type MSHREntry struct {
	Addr    proto.Addr // word address for DeNovo, line address for MESI
	Waiters []func()
	Parked  []interface{}

	// Tag lets the protocol record what kind of miss is outstanding.
	Tag MSHRState
}

// MSHR is a table of outstanding misses keyed by address.
type MSHR struct {
	entries map[proto.Addr]*MSHREntry
}

// NewMSHR returns an empty MSHR table.
func NewMSHR() *MSHR {
	return &MSHR{entries: make(map[proto.Addr]*MSHREntry)}
}

// Lookup returns the entry for addr, or nil.
func (m *MSHR) Lookup(addr proto.Addr) *MSHREntry { return m.entries[addr] }

// Allocate creates an entry for addr. It panics if one already exists:
// the protocol must coalesce via Lookup first.
func (m *MSHR) Allocate(addr proto.Addr) *MSHREntry {
	if m.entries[addr] != nil {
		panic("cache: MSHR double allocation")
	}
	e := &MSHREntry{Addr: addr}
	m.entries[addr] = e
	return e
}

// Free removes the entry and returns it so the protocol can drain waiters
// and parked messages after updating cache state.
func (m *MSHR) Free(addr proto.Addr) *MSHREntry {
	e := m.entries[addr]
	if e == nil {
		panic("cache: MSHR free of absent entry")
	}
	delete(m.entries, addr)
	return e
}

// Len returns the number of outstanding entries.
func (m *MSHR) Len() int { return len(m.entries) }

// ForEach visits all outstanding entries in ascending address order.
// Entries are held in a map, so the visit order is fixed by sorting: MSHR
// walks feed protocol decisions, and map iteration order leaking into the
// event stream would break cycle-exact determinism (simlint forbids it in
// simulator packages).
func (m *MSHR) ForEach(fn func(*MSHREntry)) {
	addrs := make([]proto.Addr, 0, len(m.entries))
	for a := range m.entries { //simlint:allow determinism: keys are sorted before use
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	for _, a := range addrs {
		fn(m.entries[a])
	}
}
