// Package cache provides the storage structures shared by the protocol
// controllers: a set-associative, LRU-replacement line array with per-word
// state (DeNovo keeps coherence state at word granularity; MESI uses the
// per-line state field), plus a small MSHR table.
package cache

import "denovosync/internal/proto"

// LineState is a per-line coherence state. The value space is owned by the
// protocol controller (internal/mesi declares its I/S/E/M constants with
// this type); zero is universally "invalid / freshly installed". Being a
// named type lets the simlint exhauststate analyzer check that protocol
// switches over line states cover every declared constant.
type LineState byte

// WordState is a per-word coherence state (DeNovo keeps state at word
// granularity; internal/denovo declares its Invalid/Valid/Registered
// constants with this type). Zero is universally "invalid".
type WordState byte

// Line is one cache line's worth of storage and metadata. State values are
// protocol-defined: MESI uses LineState only; DeNovo uses the per-word
// WordState array (Invalid/Valid/Registered).
type Line struct {
	Addr      proto.Addr // line-aligned; valid only when Present
	Present   bool
	LineState LineState
	WordState [proto.WordsPerLine]WordState
	Values    [proto.WordsPerLine]uint64
	Regions   [proto.WordsPerLine]proto.RegionID

	// lru is the set-relative recency stamp (bigger = more recent).
	lru uint64
}

// ClearWords resets all per-word metadata to the zero state.
func (l *Line) ClearWords() {
	l.WordState = [proto.WordsPerLine]WordState{}
	l.Values = [proto.WordsPerLine]uint64{}
	l.Regions = [proto.WordsPerLine]proto.RegionID{}
}

// Cache is a set-associative cache. It only manages placement and
// replacement; the protocol controller owns the meaning of states.
type Cache struct {
	sets  int
	ways  int
	lines []Line // sets*ways, set-major
	index map[proto.Addr]*Line
	clock uint64
}

// New constructs a cache with the given geometry. sizeBytes must be an
// exact multiple of ways*LineBytes and the set count a power of two.
func New(sizeBytes, ways int) *Cache {
	lines := sizeBytes / proto.LineBytes
	if lines%ways != 0 {
		panic("cache: size not a multiple of ways")
	}
	sets := lines / ways
	if sets&(sets-1) != 0 {
		panic("cache: set count not a power of two")
	}
	return &Cache{
		sets:  sets,
		ways:  ways,
		lines: make([]Line, lines),
		index: make(map[proto.Addr]*Line, lines),
	}
}

// Sets returns the number of sets; Ways the associativity.
func (c *Cache) Sets() int { return c.sets }
func (c *Cache) Ways() int { return c.ways }

func (c *Cache) setOf(line proto.Addr) int {
	return int(line/proto.LineBytes) & (c.sets - 1)
}

// Lookup returns the line holding addr's line, or nil. It does not update
// recency; use Touch for that.
func (c *Cache) Lookup(addr proto.Addr) *Line {
	return c.index[addr.Line()]
}

// Touch marks l most recently used.
func (c *Cache) Touch(l *Line) {
	c.clock++
	l.lru = c.clock
}

// Victim returns the line that would be evicted to make room for addr's
// line: an empty way if one exists, else the LRU line of the set. The
// caller is responsible for writing back the victim as the protocol
// requires, then calling Install.
func (c *Cache) Victim(addr proto.Addr) *Line {
	set := c.setOf(addr.Line())
	ways := c.lines[set*c.ways : (set+1)*c.ways]
	var victim *Line
	for i := range ways {
		l := &ways[i]
		if !l.Present {
			return l
		}
		if victim == nil || l.lru < victim.lru {
			victim = l
		}
	}
	return victim
}

// Install claims l (as returned by Victim) for addr's line, clearing all
// word metadata and marking it most recently used. Any previous occupant
// is removed from the index.
func (c *Cache) Install(l *Line, addr proto.Addr) {
	if l.Present {
		delete(c.index, l.Addr)
	}
	l.Addr = addr.Line()
	l.Present = true
	l.LineState = 0
	l.ClearWords()
	c.index[l.Addr] = l
	c.Touch(l)
}

// Evict removes l from the cache (the protocol has already written it back).
func (c *Cache) Evict(l *Line) {
	if !l.Present {
		return
	}
	delete(c.index, l.Addr)
	l.Present = false
	l.LineState = 0
	l.ClearWords()
}

// ForEach calls fn on every present line. fn must not install or evict.
func (c *Cache) ForEach(fn func(*Line)) {
	for i := range c.lines {
		if c.lines[i].Present {
			fn(&c.lines[i])
		}
	}
}

// Len returns the number of present lines.
func (c *Cache) Len() int { return len(c.index) }
