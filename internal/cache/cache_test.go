package cache

import (
	"testing"
	"testing/quick"

	"denovosync/internal/proto"
)

func lineAddr(i int) proto.Addr { return proto.Addr(i * proto.LineBytes) }

func TestGeometry(t *testing.T) {
	c := New(32*1024, 8)
	if c.Sets() != 64 || c.Ways() != 8 {
		t.Fatalf("geometry = %d sets x %d ways", c.Sets(), c.Ways())
	}
}

func TestBadGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-power-of-two sets did not panic")
		}
	}()
	New(3*proto.LineBytes, 1)
}

func TestInstallLookup(t *testing.T) {
	c := New(1024, 2)
	a := lineAddr(1)
	if c.Lookup(a) != nil {
		t.Fatal("lookup hit in empty cache")
	}
	v := c.Victim(a)
	c.Install(v, a+4) // any addr within the line
	got := c.Lookup(a + 60)
	if got == nil || got.Addr != a {
		t.Fatalf("lookup after install = %v", got)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d", c.Len())
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(2*proto.LineBytes, 2) // 1 set, 2 ways
	for i := 0; i < 2; i++ {
		c.Install(c.Victim(lineAddr(i)), lineAddr(i))
	}
	// Touch line 0 so line 1 becomes LRU.
	c.Touch(c.Lookup(lineAddr(0)))
	v := c.Victim(lineAddr(2))
	if v.Addr != lineAddr(1) {
		t.Fatalf("victim = %v, want line 1", v.Addr)
	}
	c.Install(v, lineAddr(2))
	if c.Lookup(lineAddr(1)) != nil {
		t.Fatal("evicted line still indexed")
	}
	if c.Lookup(lineAddr(0)) == nil || c.Lookup(lineAddr(2)) == nil {
		t.Fatal("resident lines lost")
	}
}

func TestInstallClearsWordState(t *testing.T) {
	c := New(proto.LineBytes, 1)
	l := c.Victim(lineAddr(0))
	c.Install(l, lineAddr(0))
	l.WordState[3] = 2
	l.Values[3] = 99
	l.Regions[3] = 7
	l.LineState = 5
	c.Install(l, lineAddr(1))
	if l.WordState[3] != 0 || l.Values[3] != 0 || l.Regions[3] != 0 || l.LineState != 0 {
		t.Fatal("Install did not clear metadata")
	}
}

func TestEvict(t *testing.T) {
	c := New(proto.LineBytes, 1)
	l := c.Victim(lineAddr(0))
	c.Install(l, lineAddr(0))
	c.Evict(l)
	if c.Lookup(lineAddr(0)) != nil || c.Len() != 0 || l.Present {
		t.Fatal("Evict left residue")
	}
	c.Evict(l) // idempotent on absent line
}

func TestForEach(t *testing.T) {
	c := New(4*proto.LineBytes, 4)
	for i := 0; i < 3; i++ {
		c.Install(c.Victim(lineAddr(i)), lineAddr(i))
	}
	seen := map[proto.Addr]bool{}
	c.ForEach(func(l *Line) { seen[l.Addr] = true })
	if len(seen) != 3 {
		t.Fatalf("ForEach visited %d lines, want 3", len(seen))
	}
}

// Property: the LRU stack property — after any access sequence over a
// single set, the victim is always the least recently installed-or-touched
// present line.
func TestLRUStackProperty(t *testing.T) {
	f := func(accesses []uint8) bool {
		const ways = 4
		c := New(ways*proto.LineBytes, ways) // one set
		var order []proto.Addr               // recency order, most recent last
		touch := func(a proto.Addr) {
			for i, x := range order {
				if x == a {
					order = append(order[:i], order[i+1:]...)
					break
				}
			}
			order = append(order, a)
		}
		for _, acc := range accesses {
			a := lineAddr(int(acc % 8))
			if l := c.Lookup(a); l != nil {
				c.Touch(l)
				touch(a)
				continue
			}
			v := c.Victim(a)
			if v.Present {
				// Must be the model's LRU (front of order).
				if v.Addr != order[0] {
					return false
				}
				order = order[1:]
			}
			c.Install(v, a)
			touch(a)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMSHRLifecycle(t *testing.T) {
	m := NewMSHR()
	a := proto.Addr(0x40)
	if m.Lookup(a) != nil {
		t.Fatal("lookup hit in empty MSHR")
	}
	e := m.Allocate(a)
	e.Waiters = append(e.Waiters, func() {})
	e.Parked = append(e.Parked, "msg")
	if m.Len() != 1 || m.Lookup(a) != e {
		t.Fatal("allocate/lookup broken")
	}
	got := m.Free(a)
	if got != e || m.Len() != 0 {
		t.Fatal("free broken")
	}
	if len(got.Waiters) != 1 || len(got.Parked) != 1 {
		t.Fatal("freed entry lost contents")
	}
}

func TestMSHRDoubleAllocatePanics(t *testing.T) {
	m := NewMSHR()
	m.Allocate(4)
	defer func() {
		if recover() == nil {
			t.Fatal("double allocate did not panic")
		}
	}()
	m.Allocate(4)
}

func TestMSHRFreeAbsentPanics(t *testing.T) {
	m := NewMSHR()
	defer func() {
		if recover() == nil {
			t.Fatal("free of absent entry did not panic")
		}
	}()
	m.Free(4)
}
