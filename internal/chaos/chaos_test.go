package chaos_test

import (
	"encoding/json"
	"fmt"
	"path/filepath"
	"testing"

	"denovosync/internal/chaos"
	"denovosync/internal/kernels"
)

// representative is the default kernel set for seed sweeps: one
// test-and-set lock, one array lock, one non-blocking structure, one
// barrier.
var representative = []string{"tatas-counter", "array-counter", "nb-treiber-stack", "bar-tree"}

// TestMonitorGreenAllKernels runs every kernel under every protocol
// configuration with the live invariant monitor armed and a perturbed
// schedule, and requires a fully green verdict: no invariant violation,
// no watchdog, and a schedule-invariant functional summary.
func TestMonitorGreenAllKernels(t *testing.T) {
	if testing.Short() {
		t.Skip("full kernel × config chaos sweep")
	}
	for _, cfg := range chaos.Configs() {
		for _, k := range kernels.All() {
			cfg, k := cfg, k
			t.Run(cfg.Name+"/"+k.ID, func(t *testing.T) {
				t.Parallel()
				spec := chaos.Spec{Kernel: k.ID, Config: cfg.Name, Iters: 6, Seed: 3}
				res := chaos.RunSpec(spec)
				if !res.OK() {
					t.Fatalf("chaos run not green: %v", res.Err())
				}
			})
		}
	}
}

// TestSeedsExploreSchedules checks that (a) every seed of a small sweep
// stays green, (b) the perturbation actually changes the executed
// schedule (some pair of seeds differs in event count), and (c) a spec
// is fully deterministic: running it twice yields identical results.
func TestSeedsExploreSchedules(t *testing.T) {
	events := map[uint64]uint64{}
	for seed := uint64(1); seed <= 4; seed++ {
		spec := chaos.Spec{Kernel: "tatas-counter", Config: "DS", Iters: 10, Seed: seed}
		res := chaos.RunSpec(spec)
		if !res.OK() {
			t.Fatalf("seed %d not green: %v", seed, res.Err())
		}
		if res.Stats == nil {
			t.Fatalf("seed %d: ok verdict without stats", seed)
		}
		events[seed] = res.Stats.Events
	}
	distinct := map[uint64]bool{}
	for _, e := range events {
		distinct[e] = true
	}
	if len(distinct) < 2 {
		t.Errorf("4 seeds produced identical event counts %v — perturbation seems inert", events)
	}

	spec := chaos.Spec{Kernel: "nb-treiber-stack", Config: "DS0", Iters: 10, Seed: 7}
	a, _ := json.Marshal(chaos.RunSpec(spec))
	b, _ := json.Marshal(chaos.RunSpec(spec))
	if string(a) != string(b) {
		t.Errorf("same spec, different results:\n%s\n%s", a, b)
	}
}

// TestRogueControllerCaught plants the broken toy controller (silent
// value corruption of an owned/registered word) and requires the live
// monitor to convert it into a violation verdict for both protocol
// families.
func TestRogueControllerCaught(t *testing.T) {
	for _, cfgName := range []string{"M", "DS"} {
		cfgName := cfgName
		t.Run(cfgName, func(t *testing.T) {
			t.Parallel()
			spec := chaos.Spec{
				Kernel:   "tatas-counter",
				Config:   cfgName,
				Iters:    20,
				EqChecks: -1, // corrupt data must fail via the monitor, not the kernel self-check
				Seed:     1,
				Fault:    &chaos.Fault{Kind: chaos.FaultRogue},
			}
			res := chaos.RunSpec(spec)
			if res.Verdict != chaos.VerdictViolation {
				t.Fatalf("verdict = %q (detail: %s), want %q", res.Verdict, res.Detail, chaos.VerdictViolation)
			}
			if len(res.Violations) == 0 {
				t.Fatal("violation verdict without recorded violations")
			}
		})
	}
}

// TestWatchdogConvertsLivelock blackholes an early message under a
// barrier kernel — every core eventually parks in the barrier with no
// retirement — and requires the watchdog to abort with a populated
// structured snapshot within a couple of budgets.
func TestWatchdogConvertsLivelock(t *testing.T) {
	const budget = 100_000
	spec := chaos.Spec{
		Kernel:         "bar-tree",
		Config:         "DS",
		Iters:          4,
		Seed:           2,
		Fault:          &chaos.Fault{Kind: chaos.FaultBlackhole, Msg: 60},
		WatchdogCycles: budget,
	}
	res := chaos.RunSpec(spec)
	if res.Verdict != chaos.VerdictWatchdog {
		t.Fatalf("verdict = %q (detail: %s), want %q", res.Verdict, res.Detail, chaos.VerdictWatchdog)
	}
	snap := res.Snapshot
	if snap == nil {
		t.Fatal("watchdog verdict without snapshot")
	}
	if len(snap.PerCore) != 16 {
		t.Errorf("snapshot has %d per-core entries, want 16", len(snap.PerCore))
	}
	if snap.Finished >= snap.Cores {
		t.Errorf("snapshot claims %d/%d threads finished — not a hang", snap.Finished, snap.Cores)
	}
	// The hang starts within the first budget or so; the watchdog must
	// diagnose it within a small number of budgets, not at the event limit.
	if snap.Cycle > 20*budget {
		t.Errorf("watchdog fired at cycle %d, want within a few budgets of %d", snap.Cycle, budget)
	}
}

// TestStuckMSHRDetected uses the same blackhole but a huge watchdog
// budget and a small stuck budget: the monitor's MSHR-leak check must
// report the orphaned transaction first.
func TestStuckMSHRDetected(t *testing.T) {
	spec := chaos.Spec{
		Kernel:         "bar-tree",
		Config:         "DS",
		Iters:          4,
		Seed:           2,
		Fault:          &chaos.Fault{Kind: chaos.FaultBlackhole, Msg: 60},
		WatchdogCycles: 50_000_000,
		StuckCycles:    100_000,
	}
	res := chaos.RunSpec(spec)
	if res.Verdict != chaos.VerdictViolation {
		t.Fatalf("verdict = %q (detail: %s), want %q", res.Verdict, res.Detail, chaos.VerdictViolation)
	}
	found := false
	for _, v := range res.Violations {
		if v.Kind == "stuck-mshr" {
			found = true
		}
	}
	if !found {
		t.Errorf("no stuck-mshr violation in %v", res.Violations)
	}
}

// TestShrinkSynthetic drives the shrinker with a synthetic monotonic
// failure predicate and checks it finds the exact minimum on both axes.
func TestShrinkSynthetic(t *testing.T) {
	const minIters, minLimit = 7, 23
	trials := 0
	run := func(s chaos.Spec) chaos.Result {
		trials++
		iters := s.Iters
		lim := -1
		if s.Limit != nil {
			lim = *s.Limit
		}
		if iters >= minIters && (lim < 0 || lim >= minLimit) {
			return chaos.Result{Verdict: chaos.VerdictViolation, Detail: "synthetic", Messages: iters * 10}
		}
		return chaos.Result{Verdict: chaos.VerdictOK, Messages: iters * 10}
	}
	rep, err := chaos.Shrink(chaos.Spec{Kernel: "synthetic", Config: "DS", Iters: 100, Seed: 1}, run)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Spec.Iters != minIters {
		t.Errorf("shrunk iters = %d, want %d", rep.Spec.Iters, minIters)
	}
	if rep.Spec.Limit == nil || *rep.Spec.Limit != minLimit {
		t.Errorf("shrunk limit = %v, want %d", rep.Spec.Limit, minLimit)
	}
	if rep.Verdict != chaos.VerdictViolation {
		t.Errorf("repro verdict = %q, want violation", rep.Verdict)
	}
	if trials > 40 {
		t.Errorf("shrinker used %d trials for a 100×1000 space — bisection broken?", trials)
	}
	if len(rep.Trials) == 0 {
		t.Error("repro carries no trial history")
	}
}

// TestShrinkBlackholeEndToEnd shrinks a real failing spec (blackholed
// message under a barrier) to a minimal reproducer, writes it to disk,
// reloads it, and replays it.
func TestShrinkBlackholeEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end shrink")
	}
	spec := chaos.Spec{
		Kernel:         "bar-tree",
		Config:         "DS",
		Iters:          4,
		Seed:           2,
		Fault:          &chaos.Fault{Kind: chaos.FaultBlackhole, Msg: 60},
		WatchdogCycles: 100_000,
	}
	rep, err := chaos.Shrink(spec, chaos.RunSpec)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != chaos.VerdictWatchdog {
		t.Fatalf("repro verdict = %q, want watchdog", rep.Verdict)
	}
	// Jitter is irrelevant to a blackhole hang: the limit must shrink to 0.
	if rep.Spec.Limit == nil || *rep.Spec.Limit != 0 {
		t.Errorf("shrunk limit = %v, want 0 (jitter irrelevant)", rep.Spec.Limit)
	}
	if rep.Spec.Iters > spec.Iters {
		t.Errorf("shrunk iters %d exceeds original %d", rep.Spec.Iters, spec.Iters)
	}

	path := filepath.Join(t.TempDir(), "repro.json")
	if err := chaos.WriteRepro(path, rep); err != nil {
		t.Fatal(err)
	}
	loaded, err := chaos.LoadRepro(path)
	if err != nil {
		t.Fatal(err)
	}
	res, ok := chaos.Replay(loaded)
	if !ok {
		t.Fatalf("replay verdict = %q, want %q (detail: %s)", res.Verdict, rep.Verdict, res.Detail)
	}
}

// TestBadSpecs covers the error verdicts for malformed specs.
func TestBadSpecs(t *testing.T) {
	for _, spec := range []chaos.Spec{
		{Kernel: "tatas-counter", Config: "XX"},
		{Kernel: "no-such-kernel", Config: "M"},
		{Kernel: "tatas-counter", Config: "M", Cores: 32},
	} {
		res := chaos.RunSpec(spec)
		if res.Verdict != chaos.VerdictError {
			t.Errorf("%+v: verdict %q, want error", spec, res.Verdict)
		}
	}
	if _, err := chaos.Shrink(chaos.Spec{Kernel: "tatas-counter", Config: "M", Iters: 2, Seed: 1},
		func(chaos.Spec) chaos.Result { return chaos.Result{Verdict: chaos.VerdictOK} }); err == nil {
		t.Error("Shrink accepted a passing spec")
	}
}

// TestConfigNames pins the protocol configuration set the sweep covers.
func TestConfigNames(t *testing.T) {
	var names []string
	for _, c := range chaos.Configs() {
		names = append(names, c.Name)
		got, ok := chaos.ConfigByName(c.Name)
		if !ok || got.Name != c.Name {
			t.Errorf("ConfigByName(%q) broken", c.Name)
		}
	}
	if fmt.Sprint(names) != "[M DS0 DS DSsig]" {
		t.Errorf("configs = %v", names)
	}
	if _, ok := chaos.ConfigByName("nope"); ok {
		t.Error("ConfigByName accepted an unknown name")
	}
}
