package chaos

import (
	"errors"
	"fmt"

	"denovosync/internal/alloc"
	"denovosync/internal/cache"
	"denovosync/internal/denovo"
	"denovosync/internal/kernels"
	"denovosync/internal/machine"
	"denovosync/internal/mesi"
	"denovosync/internal/proto"
	"denovosync/internal/sim"
	"denovosync/internal/stats"
)

// ProtoConfig is one protocol configuration under chaos test.
type ProtoConfig struct {
	Name       string // figure abbreviation: M | DS0 | DS | DSsig
	Protocol   machine.Protocol
	Signatures bool // DSsig: DeNovoSync + hardware write signatures
}

// Configs returns the four protocol configurations the chaos sweep
// covers: MESI, DeNovoSync0 (no backoff), DeNovoSync (hardware backoff),
// and DeNovoSync with the write-signature extension.
func Configs() []ProtoConfig {
	return []ProtoConfig{
		{Name: "M", Protocol: machine.MESI},
		{Name: "DS0", Protocol: machine.DeNovoSync0},
		{Name: "DS", Protocol: machine.DeNovoSync},
		{Name: "DSsig", Protocol: machine.DeNovoSync, Signatures: true},
	}
}

// ConfigByName resolves a configuration abbreviation.
func ConfigByName(name string) (ProtoConfig, bool) {
	for _, c := range Configs() {
		if c.Name == name {
			return c, true
		}
	}
	return ProtoConfig{}, false
}

// Spec is one self-contained chaos experiment: a kernel, a protocol
// configuration, and a perturbation. It is the replay artifact — a JSON
// round-trip of a Spec reproduces the identical run, verdict, and
// diagnostic.
type Spec struct {
	Kernel string `json:"kernel"`
	Config string `json:"config"` // M | DS0 | DS | DSsig

	Cores int `json:"cores,omitempty"` // 16 (default) or 64
	Iters int `json:"iters,omitempty"` // 0 = the kernel's default

	// EqChecks: 0 = the kernel default, -1 = disabled, n > 0 = n checks.
	EqChecks int `json:"eq_checks,omitempty"`

	// Seed drives the jitter stream (the workload seed is pinned so the
	// baseline and perturbed runs issue identical operation streams).
	Seed uint64 `json:"seed"`

	// MaxJitter is the per-message jitter bound (0 = default 16 cycles).
	MaxJitter sim.Cycle `json:"max_jitter,omitempty"`

	// Limit restricts jitter to the first *Limit messages: nil =
	// unlimited, 0 = no jitter. The shrinker bisects it.
	Limit *int `json:"limit,omitempty"`

	// Fault optionally plants a deliberately illegal fault; see Fault.
	Fault *Fault `json:"fault,omitempty"`

	// L1Ways / L1KB override the L1 cache geometry (0 = the Table 1
	// defaults: 8 ways, 32 KiB). The scenario fuzzer's geometry axis:
	// direct-mapped or tiny caches force capacity and conflict evictions
	// of contended lines, opening the eviction races the steady-state
	// kernel grid never reaches.
	L1Ways int `json:"l1_ways,omitempty"`
	L1KB   int `json:"l1_kb,omitempty"`

	// WatchdogCycles (0 = default 2_000_000), SampleEvery (0 = default
	// 10_000), StuckCycles (0 = default 5_000_000) tune the watchdog and
	// the live monitor.
	WatchdogCycles sim.Cycle `json:"watchdog_cycles,omitempty"`
	SampleEvery    sim.Cycle `json:"sample_every,omitempty"`
	StuckCycles    sim.Cycle `json:"stuck_cycles,omitempty"`
}

func (s Spec) cores() int {
	if s.Cores == 0 {
		return 16
	}
	return s.Cores
}

func (s Spec) maxJitter() sim.Cycle {
	if s.MaxJitter == 0 {
		return 16
	}
	return s.MaxJitter
}

func (s Spec) watchdogCycles() sim.Cycle {
	if s.WatchdogCycles == 0 {
		return 2_000_000
	}
	return s.WatchdogCycles
}

func (s Spec) policyLimit() int {
	if s.Limit == nil {
		return -1
	}
	return *s.Limit
}

func (s Spec) eqChecks() int {
	switch {
	case s.EqChecks == 0:
		return -1 // kernels.Config: -1 keeps the as-adapted default
	case s.EqChecks < 0:
		return 0 // disabled
	default:
		return s.EqChecks
	}
}

// String identifies the spec for progress lines and error messages.
func (s Spec) String() string {
	return fmt.Sprintf("%s/%s/%dc/seed=%d", s.Kernel, s.Config, s.cores(), s.Seed)
}

// Verdicts, from most to least severe (RunSpec reports the first that
// applies).
const (
	// VerdictViolation: the live monitor observed an invariant breach.
	VerdictViolation = "violation"
	// VerdictWatchdog: no core retired for a full watchdog budget.
	VerdictWatchdog = "watchdog"
	// VerdictError: the run failed some other way (kernel self-check,
	// deadlock at drain, bad spec).
	VerdictError = "error"
	// VerdictMismatch: the perturbed run's functional summary diverged
	// from the unperturbed baseline (schedule-dependent result).
	VerdictMismatch = "mismatch"
	// VerdictOK: invariants held and the result was schedule-invariant.
	VerdictOK = "ok"
)

// Result is one chaos experiment's outcome.
type Result struct {
	Verdict string `json:"verdict"`
	Detail  string `json:"detail,omitempty"`

	BaselineSummary  string `json:"baseline_summary,omitempty"`
	PerturbedSummary string `json:"perturbed_summary,omitempty"`

	Violations []Violation               `json:"violations,omitempty"`
	Snapshot   *machine.WatchdogSnapshot `json:"snapshot,omitempty"`

	// Messages is the perturbed run's send count — the upper bound of the
	// shrinker's Limit bisection.
	Messages int `json:"messages"`

	// Stats carries the perturbed run's statistics on VerdictOK.
	Stats *stats.RunStats `json:"-"`
}

// OK reports a fully green verdict.
func (r Result) OK() bool { return r.Verdict == VerdictOK }

// Err renders a non-ok result as an error (nil when OK).
func (r Result) Err() error {
	if r.OK() {
		return nil
	}
	return fmt.Errorf("chaos[%s]: %s", r.Verdict, r.Detail)
}

type outcome struct {
	stats   *stats.RunStats
	summary string
	err     error
	mon     *Monitor
	sent    int
}

// RunSpec executes one chaos experiment: the perturbed run first (live
// monitor + watchdog + perturbation policy), then — only when it comes
// back clean — the unperturbed baseline for the metamorphic differential
// check: final memory state and retired-op results must be
// schedule-invariant, so the two functional summaries must match.
func RunSpec(spec Spec) Result {
	return RunSpecObserved(spec, nil)
}

// RunSpecObserved executes like RunSpec with a transition observer wired
// into every controller of both runs (the scenario fuzzer's coverage
// signal). obs may be nil.
func RunSpecObserved(spec Spec, obs func(controller, state, event string)) Result {
	cfg, ok := ConfigByName(spec.Config)
	if !ok {
		return Result{Verdict: VerdictError, Detail: fmt.Sprintf("unknown protocol config %q (want M, DS0, DS or DSsig)", spec.Config)}
	}
	k, ok := kernels.ByID(spec.Kernel)
	if !ok {
		return Result{Verdict: VerdictError, Detail: fmt.Sprintf("unknown kernel %q", spec.Kernel)}
	}
	if c := spec.cores(); c != 16 && c != 64 {
		return Result{Verdict: VerdictError, Detail: fmt.Sprintf("unsupported core count %d (want 16 or 64)", c)}
	}
	if err := checkGeometry(spec.L1Ways, spec.L1KB); err != nil {
		return Result{Verdict: VerdictError, Detail: err.Error()}
	}

	pr := runOnce(spec, cfg, k, true, obs)
	res := Result{Messages: pr.sent, PerturbedSummary: pr.summary}
	if vs := pr.mon.Violations(); len(vs) > 0 {
		res.Verdict = VerdictViolation
		res.Violations = vs
		res.Detail = pr.mon.Err().Error()
		return res
	}
	var werr *machine.WatchdogError
	if errors.As(pr.err, &werr) {
		res.Verdict = VerdictWatchdog
		res.Snapshot = &werr.Snapshot
		res.Detail = fmt.Sprintf("no core retired an operation for %d cycles (stalled at cycle %d)", werr.Budget, werr.Snapshot.Cycle)
		return res
	}
	if pr.err != nil {
		res.Verdict = VerdictError
		res.Detail = pr.err.Error()
		return res
	}

	ba := runOnce(spec, cfg, k, false, obs)
	res.BaselineSummary = ba.summary
	if vs := ba.mon.Violations(); len(vs) > 0 {
		res.Verdict = VerdictViolation
		res.Violations = vs
		res.Detail = "baseline: " + ba.mon.Err().Error()
		return res
	}
	if ba.err != nil {
		res.Verdict = VerdictError
		res.Detail = "baseline: " + ba.err.Error()
		return res
	}
	if ba.summary != pr.summary {
		res.Verdict = VerdictMismatch
		res.Detail = fmt.Sprintf("perturbed summary diverged from baseline:\n  baseline:  %s\n  perturbed: %s", ba.summary, pr.summary)
		return res
	}
	res.Verdict = VerdictOK
	res.Stats = pr.stats
	return res
}

// checkGeometry validates an L1 geometry override: ways and size must
// keep the set count a positive power of two.
func checkGeometry(ways, kb int) error {
	switch ways {
	case 0, 1, 2, 4, 8, 16:
	default:
		return fmt.Errorf("chaos: unsupported L1 ways %d (want a power of two <= 16)", ways)
	}
	switch kb {
	case 0, 4, 8, 16, 32, 64:
	default:
		return fmt.Errorf("chaos: unsupported L1 size %d KiB (want 4, 8, 16, 32 or 64)", kb)
	}
	return nil
}

// applyGeometry overlays the spec's cache-geometry overrides on p.
func applyGeometry(p *machine.Params, ways, kb int) {
	if ways > 0 {
		p.L1Ways = ways
	}
	if kb > 0 {
		p.L1Size = kb * 1024
	}
}

// runOnce builds a fresh machine for spec and runs the kernel once,
// monitored; perturbed selects whether the policy (and any fault) is
// attached.
func runOnce(spec Spec, cfg ProtoConfig, k kernels.Kernel, perturbed bool, obs func(controller, state, event string)) outcome {
	var p machine.Params
	if spec.cores() == 64 {
		p = machine.Params64()
	} else {
		p = machine.Params16()
	}
	p.Signatures = cfg.Signatures
	p.WatchdogCycles = spec.watchdogCycles()
	applyGeometry(&p, spec.L1Ways, spec.L1KB)
	// p.Seed stays at the preset default: the workload stream must be
	// identical across the baseline and every jitter seed.

	m := machine.New(p, cfg.Protocol, alloc.New())
	AttachTransitionObservers(m, obs)
	mo := NewMonitor(m, MonitorConfig{SampleEvery: spec.SampleEvery, StuckCycles: spec.StuckCycles})
	var pb *Perturber
	if perturbed {
		pb = Attach(m.Eng, m.Net, Policy{
			Seed:           spec.Seed,
			MaxJitter:      spec.maxJitter(),
			Limit:          spec.policyLimit(),
			KeepClassOrder: true,
			Fault:          spec.Fault,
		})
		if f := spec.Fault; f != nil && f.Kind == FaultRogue {
			armRogue(m, mo, f)
		}
	}
	mo.Start()

	kc := kernels.Config{
		Cores:         spec.cores(),
		Iters:         spec.Iters,
		EqChecks:      spec.eqChecks(),
		UseSignatures: cfg.Signatures,
	}
	st, summary, err := kernels.RunWithSummary(k, m, kc)
	o := outcome{stats: st, summary: summary, err: err, mon: mo}
	if pb != nil {
		o.sent = pb.Sent()
	}
	return o
}

// AttachTransitionObservers wires a (controller, state, event) coverage
// observer into every controller of m — the atlas coverage signal the
// scenario fuzzer and cmd/protocov feed on. obs == nil is a no-op.
func AttachTransitionObservers(m *machine.Machine, obs func(controller, state, event string)) {
	if obs == nil {
		return
	}
	for _, l1 := range m.L1s {
		switch c := l1.(type) {
		case *mesi.L1:
			c.SetTransitionObserver(mesi.TransitionObserver(obs))
		case *denovo.L1:
			c.SetTransitionObserver(denovo.TransitionObserver(obs))
		}
	}
	if m.MESIDir != nil {
		m.MESIDir.SetTransitionObserver(mesi.TransitionObserver(obs))
	}
	if m.Registry != nil {
		m.Registry.SetTransitionObserver(denovo.TransitionObserver(obs))
	}
}

// armRogue schedules the broken toy controller: starting at f.Cycle (0 =
// one sample interval in) it corrupts the value of the first quiescent
// owned/registered word it finds, re-striking every sample interval
// until the monitor notices or every thread has finished — the final
// strike can no longer be repaired by protocol activity, so the
// monitor's drain-time check is a guaranteed backstop.
func armRogue(m *machine.Machine, mo *Monitor, f *Fault) {
	interval := mo.cfg.sampleEvery()
	var tick func()
	tick = func() {
		if len(mo.Violations()) > 0 {
			return
		}
		rogueCorrupt(m)
		for _, c := range m.Cores {
			if !c.Finished() {
				m.Eng.Schedule(interval, tick)
				return
			}
		}
	}
	delay := f.Cycle
	if delay == 0 {
		delay = interval
	}
	m.Eng.Schedule(delay, tick)
}

// rogueCorrupt flips bits in the cached value of the first quiescent
// owned (MESI) or registered (DeNovo) word, without updating the backing
// image — exactly the silent data corruption a buggy controller would
// produce. Reports whether a target was found.
func rogueCorrupt(m *machine.Machine) bool {
	const flip = 0x5a5a_5a5a
	blocked := map[proto.Addr]bool{}
	if m.MESIDir != nil {
		for _, line := range m.MESIDir.BusyLines() {
			blocked[line] = true
		}
	}
	if m.Registry != nil {
		for _, line := range m.Registry.FetchingLines() {
			blocked[line] = true
		}
	}
	for _, c := range m.L1s {
		switch l1 := c.(type) {
		case *mesi.L1:
			for _, line := range l1.OutstandingLines() {
				blocked[line] = true
			}
		case *denovo.L1:
			for _, w := range l1.OutstandingWords() {
				blocked[w.Line()] = true
			}
			for _, w := range l1.PendingWritebacks() {
				blocked[w.Line()] = true
			}
		}
	}
	for _, c := range m.L1s {
		hit := false
		switch l1 := c.(type) {
		case *mesi.L1:
			l1.ForEachLine(func(l *cache.Line) {
				if hit || blocked[l.Addr] || !mesi.IsOwned(l.LineState) {
					return
				}
				l.Values[0] ^= flip
				hit = true
			})
		case *denovo.L1:
			l1.ForEachLine(func(l *cache.Line) {
				if hit || blocked[l.Addr] {
					return
				}
				for i := range l.WordState {
					if denovo.IsRegistered(l.WordState[i]) {
						l.Values[i] ^= flip
						hit = true
						return
					}
				}
			})
		}
		if hit {
			return true
		}
	}
	return false
}
