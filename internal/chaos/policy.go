// Package chaos is the simulator's deterministic fault-injection and
// online-verification layer: seeded timing perturbation of the NoC
// (metamorphic schedule exploration), a cycle-sampled live invariant
// monitor over the real MESI/DeNovo controllers, a deadlock/livelock
// watchdog, and a schedule shrinker that reduces a failing seed to a
// replayable JSON artifact.
//
// Everything in this package runs inside the simulation's determinism
// boundary: all randomness comes from a seeded sim.RNG, so a (spec, seed)
// pair always reproduces the same schedule, the same verdict, and the
// same diagnostic.
package chaos

import (
	"denovosync/internal/noc"
	"denovosync/internal/proto"
	"denovosync/internal/sim"
)

// Policy describes one deterministic timing perturbation.
//
// Legal-reorder bounds: jitter is always non-negative (a message is never
// delivered before its modeled latency) and, with KeepClassOrder, the
// delivery order of messages with the same (src, dst, class) triple is
// preserved by clamping each delivery to be no earlier than its
// predecessor's. Cross-pair and cross-class reordering is unrestricted —
// exactly the freedom a real mesh with per-class virtual networks has.
// Both protocols' handshakes must converge under every such schedule;
// the metamorphic differential check (RunSpec) enforces it.
type Policy struct {
	// Seed drives the jitter stream (independent of the workload seed).
	Seed uint64

	// MaxJitter is the largest per-message added delay; each message gets
	// a uniform draw from [0, MaxJitter]. 0 = no jitter.
	MaxJitter sim.Cycle

	// Limit restricts jitter to the first Limit messages sent (< 0 =
	// unlimited, 0 = none). The shrinker bisects this prefix.
	Limit int

	// KeepClassOrder preserves per-(src,dst,class) FIFO delivery.
	// RunSpec always sets it; disabling it leaves the legal-reorder
	// envelope and is only for experiments.
	KeepClassOrder bool

	// Fault, when non-nil, plants a deliberately *illegal* fault (message
	// blackholing, rogue controller writes) to exercise the detection
	// machinery. See Fault.
	Fault *Fault
}

// Fault kinds.
const (
	// FaultBlackhole delays one message (index Msg in send order) by
	// Delay cycles (default effectively forever) — a lost-message model
	// that the watchdog must convert into a diagnostic.
	FaultBlackhole = "blackhole"
	// FaultRogue is a broken toy controller: at cycle Cycle it marks a
	// word owned/registered in a second cache with a corrupted value,
	// violating SWMR — the live invariant monitor must catch it.
	FaultRogue = "rogue"
)

// Fault plants one deterministic, serializable fault. Faults are outside
// the legal perturbation bounds by design (test/demo tooling); a Spec
// carrying one is expected to fail, and shrinks/replays like any other.
type Fault struct {
	Kind string `json:"kind"` // FaultBlackhole | FaultRogue

	// Blackhole: 0-based index of the doomed message and the added delay
	// (0 = defaultBlackholeDelay).
	Msg   int       `json:"msg,omitempty"`
	Delay sim.Cycle `json:"delay,omitempty"`

	// Rogue: corruption cycle.
	Cycle sim.Cycle `json:"cycle,omitempty"`
}

// defaultBlackholeDelay is far beyond any run length, so a blackholed
// message is effectively never delivered.
const defaultBlackholeDelay sim.Cycle = 1 << 40

func (f *Fault) blackholeDelay() sim.Cycle {
	if f.Delay > 0 {
		return f.Delay
	}
	return defaultBlackholeDelay
}

// pairKey identifies a FIFO-preserved delivery stream.
type pairKey struct {
	src, dst proto.NodeID
	class    proto.MsgClass
}

// Perturber is an attached policy: it rewrites every message's delivery
// latency and counts sends (the shrinker's prefix coordinate).
type Perturber struct {
	policy Policy
	eng    *sim.Engine
	rng    *sim.RNG
	sent   int
	lastAt map[pairKey]sim.Cycle
}

// Attach installs policy p on net. The engine is needed to anchor the
// FIFO clamp at absolute delivery times.
func Attach(eng *sim.Engine, net *noc.Network, p Policy) *Perturber {
	pb := &Perturber{
		policy: p,
		eng:    eng,
		rng:    sim.NewRNG(p.Seed ^ 0x9e3779b97f4a7c15), // decorrelate from workload seeds
		lastAt: make(map[pairKey]sim.Cycle),
	}
	net.SetPerturb(pb.perturb)
	return pb
}

// Sent returns the number of messages observed so far.
func (pb *Perturber) Sent() int { return pb.sent }

func (pb *Perturber) perturb(now sim.Cycle, src, dst proto.NodeID, class proto.MsgClass, flits int, lat sim.Cycle) sim.Cycle {
	idx := pb.sent
	pb.sent++
	jitter := sim.Cycle(0)
	if pb.policy.MaxJitter > 0 && (pb.policy.Limit < 0 || idx < pb.policy.Limit) {
		jitter = pb.rng.Cycles(0, pb.policy.MaxJitter+1)
	}
	if f := pb.policy.Fault; f != nil && f.Kind == FaultBlackhole && idx == f.Msg {
		jitter += f.blackholeDelay()
	}
	at := now + lat + jitter
	if pb.policy.KeepClassOrder {
		k := pairKey{src, dst, class}
		if prev, ok := pb.lastAt[k]; ok && at < prev {
			at = prev
		}
		pb.lastAt[k] = at
	}
	return at - now
}
