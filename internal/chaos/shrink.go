package chaos

import (
	"encoding/json"
	"fmt"
	"os"

	"denovosync/internal/kernels"
)

// Trial records one shrinking probe.
type Trial struct {
	Iters   int    `json:"iters"`
	Limit   int    `json:"limit"` // -1 = unlimited jitter
	Verdict string `json:"verdict"`
}

// Repro is the replayable minimal reproducer the shrinker emits: the
// reduced Spec plus the verdict it reproduces and the probe history that
// led there. RunSpec(r.Spec) — or `chaos replay r.json` — re-derives the
// identical failure.
type Repro struct {
	Spec     Spec    `json:"spec"`
	Verdict  string  `json:"verdict"`
	Detail   string  `json:"detail,omitempty"`
	Messages int     `json:"messages"`
	Trials   []Trial `json:"trials,omitempty"`
}

// BisectMin returns the smallest v in [lo, hi] for which fails(v)
// holds, under the usual shrinking monotonicity assumption (if v fails,
// larger values keep failing; a non-monotone predicate merely yields a
// larger-than-minimal answer). ok is false when no probed value failed.
// This is the shared reduction kernel of the chaos shrinker and the
// scenario fuzzer's minimizer.
func BisectMin(lo, hi int, fails func(int) bool) (best int, ok bool) {
	for lo <= hi {
		mid := lo + (hi-lo)/2
		if fails(mid) {
			best, ok = mid, true
			hi = mid - 1
		} else {
			lo = mid + 1
		}
	}
	return best, ok
}

// Shrink reduces a failing spec to a minimal reproducer: it first
// bisects the workload-op prefix (kernel iterations), then the
// perturbation prefix (the jitter message limit), keeping each reduction
// only when the run still fails with the original verdict, and
// re-verifies the final spec. run is the executor (normally RunSpec;
// tests substitute predicates).
func Shrink(spec Spec, run func(Spec) Result) (*Repro, error) {
	r0 := run(spec)
	if r0.OK() {
		return nil, fmt.Errorf("chaos: %s does not fail — nothing to shrink", spec.String())
	}
	target := r0.Verdict
	rep := &Repro{Spec: spec}
	probe := func(s Spec) bool {
		r := run(s)
		rep.Trials = append(rep.Trials, Trial{Iters: s.Iters, Limit: s.policyLimit(), Verdict: r.Verdict})
		return r.Verdict == target
	}

	// Phase 1: smallest iteration count that still fails.
	iters := spec.Iters
	if iters == 0 {
		if k, ok := kernels.ByID(spec.Kernel); ok {
			iters = k.DefaultIters
		}
	}
	if iters > 1 {
		best, ok := BisectMin(1, iters, func(mid int) bool {
			s := spec
			s.Iters = mid
			return probe(s)
		})
		if !ok {
			best = iters // keep the original count (r0 proved it fails)
		}
		spec.Iters = best
	} else if iters == 1 {
		spec.Iters = 1
	}

	// Phase 2: smallest jitter prefix that still fails. The upper bound is
	// the failing run's message count (a limit beyond it is equivalent to
	// unlimited). Converging to 0 proves jitter is irrelevant to the
	// failure (e.g. a planted fault reproduces on the unjittered schedule).
	r1 := run(spec)
	if r1.Verdict != target {
		return nil, fmt.Errorf("chaos: shrink lost the failure re-running %s (got %q, want %q)", spec.String(), r1.Verdict, target)
	}
	hiLimit := r1.Messages
	if cur := spec.policyLimit(); cur >= 0 && cur < hiLimit {
		hiLimit = cur
	}
	bestLimit := spec.policyLimit()
	if best, ok := BisectMin(0, hiLimit, func(mid int) bool {
		s := spec
		lim := mid
		s.Limit = &lim
		return probe(s)
	}); ok {
		bestLimit = best
	}
	if bestLimit >= 0 {
		lim := bestLimit
		spec.Limit = &lim
	}

	// Final verification of the reduced spec.
	rf := run(spec)
	if rf.Verdict != target {
		return nil, fmt.Errorf("chaos: shrunk spec %s does not reproduce (got %q, want %q)", spec.String(), rf.Verdict, target)
	}
	rep.Spec = spec
	rep.Verdict = rf.Verdict
	rep.Detail = rf.Detail
	rep.Messages = rf.Messages
	return rep, nil
}

// WriteRepro writes the reproducer as indented JSON.
func WriteRepro(path string, r *Repro) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("chaos: marshaling repro: %w", err)
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// LoadRepro reads a reproducer written by WriteRepro.
func LoadRepro(path string) (*Repro, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Repro
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, fmt.Errorf("chaos: parsing repro %s: %w", path, err)
	}
	return &r, nil
}

// Replay re-runs a reproducer's spec and reports whether the recorded
// verdict reproduced.
func Replay(r *Repro) (Result, bool) {
	res := RunSpec(r.Spec)
	return res, res.Verdict == r.Verdict
}
