// Hash-based jitter: the PDES-safe variant of the chaos timing policy.
//
// The classic Perturber draws every message's jitter from one global RNG
// stream sequenced by the global send index, so the draw a message gets
// depends on the interleaving of all senders — reproducible only under a
// single engine. HashPerturber instead derives each message's jitter by
// hashing sender-owned coordinates (seed, src, dst, class, per-edge send
// index), so a partitioned run assigns every message the same jitter as
// the serial run without any cross-tile coordination. The per-(src, dst,
// class) FIFO clamp state is likewise src-owned.
package chaos

import (
	"denovosync/internal/noc"
	"denovosync/internal/proto"
	"denovosync/internal/sim"
)

// HashPolicy is a deterministic, partition-independent jitter policy.
type HashPolicy struct {
	// Seed decorrelates jitter streams across experiments.
	Seed uint64
	// MaxJitter is the largest per-message added delay; each message gets
	// a hash-uniform draw from [0, MaxJitter]. 0 = no jitter.
	MaxJitter sim.Cycle
}

// edgeState is one sender's FIFO-clamp bookkeeping for one (dst, class)
// stream: the number of messages sent on the edge (the hash coordinate)
// and the latest delivery time handed out (the clamp floor).
type edgeState struct {
	sent   uint64
	lastAt sim.Cycle
}

// HashPerturber is an attached HashPolicy.
//
// Every mutable field is sliced per source node and written only at send
// time by the sending tile, so the perturber partitions with the machine.
type HashPerturber struct {
	policy  HashPolicy
	classes int
	// edges[src] holds that sender's per-(dst, class) streams, indexed
	// dst*classes + class. Source-owned state.
	edges [][]edgeState
}

// AttachHash installs policy p on net and returns the perturber.
func AttachHash(net *noc.Network, p HashPolicy) *HashPerturber {
	nodes := net.Tiles() + noc.NumMemCtrl
	hp := &HashPerturber{policy: p, classes: int(proto.NumMsgClasses)}
	hp.edges = make([][]edgeState, nodes)
	for i := range hp.edges {
		hp.edges[i] = make([]edgeState, nodes*hp.classes)
	}
	net.SetPerturb(hp.perturb)
	return hp
}

// splitmix64 is the finalizer of the SplitMix64 generator: a bijective
// avalanche mix, uniform enough for jitter draws.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func (hp *HashPerturber) perturb(now sim.Cycle, src, dst proto.NodeID, class proto.MsgClass, flits int, lat sim.Cycle) sim.Cycle {
	es := &hp.edges[src][int(dst)*hp.classes+int(class)]
	idx := es.sent
	es.sent++
	jitter := sim.Cycle(0)
	if hp.policy.MaxJitter > 0 {
		h := splitmix64(hp.policy.Seed ^
			uint64(src)<<48 ^ uint64(dst)<<32 ^ uint64(class)<<24 ^ idx)
		jitter = sim.Cycle(h % uint64(hp.policy.MaxJitter+1))
	}
	at := now + lat + jitter
	// Per-(src,dst,class) FIFO clamp, anchored in sender-owned state.
	if at < es.lastAt {
		at = es.lastAt
	}
	es.lastAt = at
	return at - now
}
