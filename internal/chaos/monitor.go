package chaos

import (
	"fmt"
	"sort"

	"denovosync/internal/cache"
	"denovosync/internal/denovo"
	"denovosync/internal/machine"
	"denovosync/internal/mesi"
	"denovosync/internal/proto"
	"denovosync/internal/sim"
)

// Violation is one observed invariant breach.
type Violation struct {
	Cycle  uint64 `json:"cycle"`
	Kind   string `json:"kind"` // "swmr" | "value" | "dir-mismatch" | "reg-mismatch" | "parked-cycle" | "stuck-mshr" | "quiescence" | "backoff"
	Detail string `json:"detail"`
}

func (v Violation) String() string {
	return fmt.Sprintf("cycle %d [%s] %s", v.Cycle, v.Kind, v.Detail)
}

// MonitorConfig tunes the live invariant monitor.
type MonitorConfig struct {
	// SampleEvery is the checking cadence in cycles (default 10_000).
	SampleEvery sim.Cycle
	// StuckCycles flags an MSHR transaction outstanding longer than this
	// as leaked/stuck (default 5_000_000; 0 disables). Keep it above the
	// watchdog budget: a global stall should be the watchdog's diagnosis.
	StuckCycles sim.Cycle
	// MaxViolations caps recorded violations (default 64); further ones
	// are counted but dropped.
	MaxViolations int
}

func (c MonitorConfig) sampleEvery() sim.Cycle {
	if c.SampleEvery > 0 {
		return c.SampleEvery
	}
	return 10_000
}

func (c MonitorConfig) stuckCycles() sim.Cycle {
	if c.StuckCycles > 0 {
		return c.StuckCycles
	}
	return 5_000_000
}

func (c MonitorConfig) maxViolations() int {
	if c.MaxViolations > 0 {
		return c.MaxViolations
	}
	return 64
}

// stuckKey identifies one (core, MSHR entry) pair across samples.
type stuckKey struct {
	core int
	addr proto.Addr
}

// Monitor samples the live system every SampleEvery cycles and applies
// the protocols' stable-state invariants to every line/word that is
// *quiescent at that instant* — no outstanding L1 transaction anywhere,
// directory not busy (MESI), registry not mid-fetch and no unacked
// writeback (DeNovo). Every in-flight protocol action is anchored by one
// of those markers, so transient states (e.g. DeNovo's
// registered-at-issue data stores while the registration is in flight)
// are exempt and everything else must already satisfy the end-of-run
// validator's invariants.
//
// When the event queue drains, the monitor runs the end-of-run
// quiescence checks (no undelivered messages, validator green, backoff
// counters within their mask) and stops rescheduling itself.
type Monitor struct {
	m   *machine.Machine
	cfg MonitorConfig

	mesiL1s []*mesi.L1
	dnvL1s  []*denovo.L1

	violations []Violation
	dropped    int

	firstSeen map[stuckKey]sim.Cycle
	reported  map[stuckKey]bool

	samples  int
	finished bool
}

// NewMonitor builds a monitor for m. Call Start before m.Run.
func NewMonitor(m *machine.Machine, cfg MonitorConfig) *Monitor {
	mo := &Monitor{
		m:         m,
		cfg:       cfg,
		firstSeen: make(map[stuckKey]sim.Cycle),
		reported:  make(map[stuckKey]bool),
	}
	for _, c := range m.L1s {
		switch l1 := c.(type) {
		case *mesi.L1:
			mo.mesiL1s = append(mo.mesiL1s, l1)
		case *denovo.L1:
			mo.dnvL1s = append(mo.dnvL1s, l1)
		}
	}
	return mo
}

// Start arms the sampling loop and in-flight message tracking.
func (mo *Monitor) Start() {
	mo.m.Net.TrackInFlight()
	mo.m.Eng.Schedule(mo.cfg.sampleEvery(), mo.sample)
}

// Violations returns the recorded breaches (order is deterministic).
func (mo *Monitor) Violations() []Violation { return mo.violations }

// Dropped returns how many violations exceeded the recording cap.
func (mo *Monitor) Dropped() int { return mo.dropped }

// Samples returns how many live samples ran.
func (mo *Monitor) Samples() int { return mo.samples }

// Finished reports whether the end-of-run quiescence check ran (it does
// not when the run was aborted, e.g. by the watchdog).
func (mo *Monitor) Finished() bool { return mo.finished }

// Err summarizes the verdict: nil when no violation was observed.
func (mo *Monitor) Err() error {
	if len(mo.violations) == 0 {
		return nil
	}
	return fmt.Errorf("chaos: %d invariant violations (first: %s)",
		len(mo.violations)+mo.dropped, mo.violations[0])
}

func (mo *Monitor) violate(kind, format string, args ...interface{}) {
	if len(mo.violations) >= mo.cfg.maxViolations() {
		mo.dropped++
		return
	}
	mo.violations = append(mo.violations, Violation{
		Cycle:  uint64(mo.m.Eng.Now()),
		Kind:   kind,
		Detail: fmt.Sprintf(format, args...),
	})
}

func (mo *Monitor) sample() {
	mo.samples++
	if len(mo.mesiL1s) > 0 {
		mo.checkMESI()
	} else {
		mo.checkDeNovo()
	}
	if mo.m.Eng.Pending() == 0 {
		mo.finishCheck()
		mo.finished = true
		return
	}
	mo.m.Eng.Schedule(mo.cfg.sampleEvery(), mo.sample)
}

// checkMESI applies SWMR, value coherence, and L1/directory agreement to
// every line with no transaction in flight.
func (mo *Monitor) checkMESI() {
	blocked := map[proto.Addr]bool{}
	for _, line := range mo.m.MESIDir.BusyLines() {
		blocked[line] = true
	}
	stuck := make([]stuckKey, 0, 8)
	for ci, l1 := range mo.mesiL1s {
		for _, line := range l1.OutstandingLines() {
			blocked[line] = true
			stuck = append(stuck, stuckKey{ci, line})
		}
	}
	type holder struct {
		owners  []int
		sharers []int
	}
	lines := map[proto.Addr]*holder{}
	var lineOrder []proto.Addr
	for ci, l1 := range mo.mesiL1s {
		ci := ci
		l1.ForEachLine(func(l *cache.Line) {
			if blocked[l.Addr] {
				return
			}
			h := lines[l.Addr]
			if h == nil {
				h = &holder{}
				lines[l.Addr] = h
				lineOrder = append(lineOrder, l.Addr)
			}
			switch {
			case mesi.IsOwned(l.LineState):
				h.owners = append(h.owners, ci)
				for i := 0; i < proto.WordsPerLine; i++ {
					a := l.Addr + proto.Addr(i*proto.WordBytes)
					if l.Values[i] != mo.m.Store.Read(a) {
						mo.violate("value", "owned word %v at core %d diverges from committed image", a, ci)
					}
				}
			case mesi.IsShared(l.LineState):
				h.sharers = append(h.sharers, ci)
			}
		})
	}
	sort.Slice(lineOrder, func(i, j int) bool { return lineOrder[i] < lineOrder[j] })
	for _, line := range lineOrder {
		h := lines[line]
		if len(h.owners) > 1 {
			mo.violate("swmr", "line %v owned (M/E) by cores %v", line, h.owners)
			continue
		}
		if len(h.owners) == 1 {
			if len(h.sharers) > 0 {
				mo.violate("swmr", "line %v owned by core %d alongside sharers %v", line, h.owners[0], h.sharers)
			}
			if owner, ok := mo.m.MESIDir.OwnerOf(line); !ok || int(owner) != h.owners[0] {
				mo.violate("dir-mismatch", "core %d holds line %v M/E but the directory does not record it as owner", h.owners[0], line)
			}
			continue
		}
		// Sharers must be in the directory's set (a missing sharer loses
		// an invalidation); stale extras are legal (silent S eviction).
		if len(h.sharers) > 0 {
			dirSharers := map[proto.CoreID]bool{}
			for _, s := range mo.m.MESIDir.Sharers(line) {
				dirSharers[s] = true
			}
			for _, s := range h.sharers {
				if !dirSharers[proto.CoreID(s)] {
					mo.violate("dir-mismatch", "core %d holds line %v Shared but is missing from the directory's sharer set", s, line)
				}
			}
		}
	}
	mo.checkStuck(stuck)
}

// checkDeNovo applies at-most-one-Registered-per-word, value coherence,
// registry pointer agreement, and registration-queue acyclicity to every
// word whose line has no transaction in flight.
func (mo *Monitor) checkDeNovo() {
	blocked := map[proto.Addr]bool{} // line-granularity quiescence gate
	for _, line := range mo.m.Registry.FetchingLines() {
		blocked[line] = true
	}
	stuck := make([]stuckKey, 0, 8)
	for ci, l1 := range mo.dnvL1s {
		for _, w := range l1.OutstandingWords() {
			blocked[w.Line()] = true
			stuck = append(stuck, stuckKey{ci, w})
		}
		for _, w := range l1.PendingWritebacks() {
			blocked[w.Line()] = true
		}
	}
	holders := map[proto.Addr][]int{}
	var wordOrder []proto.Addr
	for ci, l1 := range mo.dnvL1s {
		ci := ci
		l1.ForEachLine(func(l *cache.Line) {
			if blocked[l.Addr] {
				return
			}
			for i := range l.WordState {
				if !denovo.IsRegistered(l.WordState[i]) {
					continue
				}
				word := l.Addr + proto.Addr(i*proto.WordBytes)
				if _, seen := holders[word]; !seen {
					wordOrder = append(wordOrder, word)
				}
				holders[word] = append(holders[word], ci)
				if l.Values[i] != mo.m.Store.Read(word) {
					mo.violate("value", "registered word %v at core %d diverges from committed image", word, ci)
				}
			}
		})
	}
	sort.Slice(wordOrder, func(i, j int) bool { return wordOrder[i] < wordOrder[j] })
	for _, word := range wordOrder {
		hs := holders[word]
		if len(hs) > 1 {
			mo.violate("swmr", "word %v registered at cores %v", word, hs)
			continue
		}
		if got := mo.m.Registry.OwnerOf(word); got != hs[0] {
			mo.violate("reg-mismatch", "core %d holds word %v registered but the registry points at %d", hs[0], word, got)
		}
	}
	// The converse: an (unblocked) registry pointer must name a core that
	// actually holds the word registered.
	mo.m.Registry.ForEachOwned(func(word proto.Addr, owner proto.CoreID) {
		if blocked[word.Line()] {
			return
		}
		if !mo.dnvL1s[owner].HoldsRegistered(word) {
			mo.violate("reg-mismatch", "registry points word %v at core %d, which does not hold it", word, owner)
		}
	})
	mo.checkParkedCycles()
	mo.checkStuck(stuck)
}

// checkParkedCycles detects a cycle in the per-word wait graph of parked
// forwarded registrations (waiter -> core whose MSHR parks it) — the
// distributed registration queue must stay acyclic or the chain
// deadlocks.
func (mo *Monitor) checkParkedCycles() {
	type edgeMap map[int]int // waiter core -> parking core
	edges := map[proto.Addr]edgeMap{}
	var words []proto.Addr
	for ci, l1 := range mo.dnvL1s {
		for _, w := range l1.OutstandingWords() {
			for _, p := range l1.ParkedRequesters(w) {
				if edges[w] == nil {
					edges[w] = edgeMap{}
					words = append(words, w)
				}
				edges[w][int(p)] = ci
			}
		}
	}
	sort.Slice(words, func(i, j int) bool { return words[i] < words[j] })
	for _, w := range words {
		em := edges[w]
		starts := make([]int, 0, len(em))
		for s := range em { //simlint:allow determinism: keys are sorted before use
			starts = append(starts, s)
		}
		sort.Ints(starts)
		for _, s := range starts {
			seen := map[int]bool{s: true}
			cur := s
			for {
				next, ok := em[cur]
				if !ok {
					break
				}
				if seen[next] {
					mo.violate("parked-cycle", "registration wait chain for word %v cycles through core %d", w, next)
					break
				}
				seen[next] = true
				cur = next
			}
		}
	}
}

// checkStuck flags MSHR entries outstanding across samples for longer
// than the stuck budget — leaks that global progress would mask.
func (mo *Monitor) checkStuck(live []stuckKey) {
	if mo.cfg.StuckCycles < 0 {
		return
	}
	now := mo.m.Eng.Now()
	budget := mo.cfg.stuckCycles()
	next := make(map[stuckKey]sim.Cycle, len(live))
	for _, k := range live {
		first, ok := mo.firstSeen[k]
		if !ok {
			first = now
		}
		next[k] = first
		if now-first >= budget && !mo.reported[k] {
			mo.reported[k] = true
			mo.violate("stuck-mshr", "core %d transaction for %v outstanding for %d cycles", k.core, k.addr, now-first)
		}
	}
	mo.firstSeen = next
}

// finishCheck runs the end-of-run quiescence invariants once the event
// queue has drained.
func (mo *Monitor) finishCheck() {
	if n := mo.m.Net.InFlightTotal(); n != 0 {
		mo.violate("quiescence", "%d undelivered network messages after drain", n)
	}
	if err := mo.m.CheckInvariants(); err != nil {
		mo.violate("quiescence", "%v", err)
	}
	mask := sim.Cycle(1)<<mo.m.Params.BackoffBits - 1
	for ci, l1 := range mo.dnvL1s {
		if l1.BackoffCounter() > mask {
			mo.violate("backoff", "core %d backoff counter %d exceeds its %d-bit mask", ci, l1.BackoffCounter(), mo.m.Params.BackoffBits)
		}
		if l1.IncrementCounter() > mask {
			mo.violate("backoff", "core %d backoff increment %d exceeds its %d-bit mask", ci, l1.IncrementCounter(), mo.m.Params.BackoffBits)
		}
	}
}
