package kernels_test

import (
	"testing"

	"denovosync/internal/alloc"
	"denovosync/internal/kernels"
	"denovosync/internal/machine"
)

func TestAllHas24(t *testing.T) {
	ks := kernels.All()
	if len(ks) != 24 {
		t.Fatalf("kernel count = %d, want 24", len(ks))
	}
	ids := map[string]bool{}
	for _, k := range ks {
		if ids[k.ID] {
			t.Fatalf("duplicate kernel ID %q", k.ID)
		}
		ids[k.ID] = true
	}
	for _, g := range []kernels.Group{kernels.LockTATAS, kernels.LockArray, kernels.NonBlocking, kernels.Barriers} {
		if n := len(kernels.ByGroup(g)); n != 6 {
			t.Fatalf("group %v has %d kernels, want 6", g, n)
		}
	}
}

func TestByID(t *testing.T) {
	k, ok := kernels.ByID("tatas-single-q")
	if !ok || k.Name != "single Q" {
		t.Fatalf("ByID lookup failed: %+v %v", k, ok)
	}
	if _, ok := kernels.ByID("nope"); ok {
		t.Fatal("bogus ID resolved")
	}
}

// TestEveryKernelRunsOnEveryProtocol is the big integration matrix:
// all 24 kernels x 3 protocols at 16 cores with reduced iteration counts.
func TestEveryKernelRunsOnEveryProtocol(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix test skipped in -short mode")
	}
	for _, k := range kernels.All() {
		for _, prot := range []machine.Protocol{machine.MESI, machine.DeNovoSync0, machine.DeNovoSync} {
			k, prot := k, prot
			t.Run(k.ID+"/"+prot.String(), func(t *testing.T) {
				t.Parallel()
				m := machine.New(machine.Params16(), prot, alloc.New())
				iters := 10
				if k.DefaultIters >= 1000 {
					iters = 100
				}
				rs, err := kernels.Run(k, m, kernels.Config{Cores: 16, Iters: iters})
				if err != nil {
					t.Fatalf("%s on %v: %v", k.ID, prot, err)
				}
				if rs.ExecTime == 0 {
					t.Fatalf("%s on %v: zero exec time", k.ID, prot)
				}
			})
		}
	}
}

// TestKernelDeterminism: one representative kernel per group is
// cycle-exact reproducible.
func TestKernelDeterminism(t *testing.T) {
	for _, id := range []string{"tatas-counter", "array-single-q", "nb-m-s-queue", "bar-central"} {
		k, ok := kernels.ByID(id)
		if !ok {
			t.Fatalf("missing kernel %s", id)
		}
		run := func() (uint64, uint64) {
			m := machine.New(machine.Params16(), machine.DeNovoSync, alloc.New())
			rs, err := kernels.Run(k, m, kernels.Config{Cores: 16, Iters: 8})
			if err != nil {
				t.Fatal(err)
			}
			return uint64(rs.ExecTime), rs.TotalTraffic
		}
		e1, t1 := run()
		e2, t2 := run()
		if e1 != e2 || t1 != t2 {
			t.Fatalf("%s nondeterministic: (%d,%d) vs (%d,%d)", id, e1, t1, e2, t2)
		}
	}
}

// TestCounterChecksFire: the built-in functional checks validate totals.
func TestCounterChecksFire(t *testing.T) {
	for _, id := range []string{"tatas-counter", "array-counter", "nb-fai-counter"} {
		k, _ := kernels.ByID(id)
		m := machine.New(machine.Params16(), machine.MESI, alloc.New())
		if _, err := kernels.Run(k, m, kernels.Config{Cores: 16, Iters: 5}); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
	}
}

// TestAblationConfigs: backoff, padding, and equality-check knobs run.
func TestAblationConfigs(t *testing.T) {
	k, _ := kernels.ByID("tatas-stack")
	m := machine.New(machine.Params16(), machine.DeNovoSync0, alloc.New())
	cfg := kernels.Config{Cores: 16, Iters: 5, NoPadding: true}
	cfg.LockBackoff.Min, cfg.LockBackoff.Max = 128, 2048
	if _, err := kernels.Run(k, m, cfg); err != nil {
		t.Fatal(err)
	}

	h, _ := kernels.ByID("nb-herlihy-stack")
	m2 := machine.New(machine.Params16(), machine.DeNovoSync, alloc.New())
	if _, err := kernels.Run(h, m2, kernels.Config{Cores: 16, Iters: 5, EqChecks: 0}); err != nil {
		t.Fatal(err)
	}
}

// TestKernels64Cores smoke-tests one kernel per group on the 8x8 machine
// (reduced iterations): the full 64-core runs live in cmd/paperbench.
func TestKernels64Cores(t *testing.T) {
	if testing.Short() {
		t.Skip("64-core kernels skipped in -short mode")
	}
	for _, id := range []string{"tatas-double-q", "array-counter", "nb-treiber-stack", "bar-n-ary"} {
		for _, prot := range []machine.Protocol{machine.MESI, machine.DeNovoSync} {
			id, prot := id, prot
			t.Run(id+"/"+prot.String(), func(t *testing.T) {
				t.Parallel()
				k, ok := kernels.ByID(id)
				if !ok {
					t.Fatalf("missing kernel %s", id)
				}
				m := machine.New(machine.Params64(), prot, alloc.New())
				if _, err := kernels.Run(k, m, kernels.Config{Cores: 64, Iters: 5}); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// TestSignatureKernels: the lock kernels run with signature-based
// invalidation on a signature-enabled machine and stay functionally exact.
func TestSignatureKernels(t *testing.T) {
	p := machine.Params16()
	p.Signatures = true
	for _, id := range []string{"tatas-counter", "array-heap"} {
		k, _ := kernels.ByID(id)
		m := machine.New(p, machine.DeNovoSync, alloc.New())
		cfg := kernels.Config{Cores: 16, Iters: 8, UseSignatures: true}
		if _, err := kernels.Run(k, m, cfg); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
	}
}

// TestInvalidateAllKernels: the invalidate-all fallback stays correct.
func TestInvalidateAllKernels(t *testing.T) {
	k, _ := kernels.ByID("tatas-counter")
	m := machine.New(machine.Params16(), machine.DeNovoSync0, alloc.New())
	if _, err := kernels.Run(k, m, kernels.Config{Cores: 16, Iters: 8, InvalidateAll: true}); err != nil {
		t.Fatal(err)
	}
}
