package kernels_test

import (
	"testing"

	"denovosync/internal/alloc"
	"denovosync/internal/kernels"
	"denovosync/internal/machine"
)

// TestCrossProtocolFunctionalEquivalence runs every kernel on all three
// protocols and requires identical functional summaries: queue/stack/heap
// element counts, counter totals, large-CS array sums, barrier arrivals.
// Coherence protocols may only change timing and traffic — any divergence
// in the functional outcome is a protocol bug (lost update, broken
// atomicity, skipped barrier). Structural validity (min-heap property,
// intact next chains, no overflow) is checked inside each summary.
//
// Runs at 16 cores: every kernel's functional outcome is fully determined
// there (no capacity drops), so the summaries must agree exactly.
func TestCrossProtocolFunctionalEquivalence(t *testing.T) {
	protocols := []machine.Protocol{machine.MESI, machine.DeNovoSync0, machine.DeNovoSync}
	for _, k := range kernels.All() {
		k := k
		t.Run(k.ID, func(t *testing.T) {
			t.Parallel()
			summaries := make(map[machine.Protocol]string, len(protocols))
			for _, prot := range protocols {
				p := machine.Params16()
				p.Seed = 11
				m := machine.New(p, prot, alloc.New())
				_, sum, err := kernels.RunWithSummary(k, m, kernels.Config{Iters: 6, EqChecks: -1})
				if err != nil {
					t.Fatalf("%s/%v: %v", k.ID, prot, err)
				}
				if sum == "" {
					t.Fatalf("%s/%v: kernel produced no functional summary", k.ID, prot)
				}
				summaries[prot] = sum
			}
			base := summaries[protocols[0]]
			for _, prot := range protocols[1:] {
				if summaries[prot] != base {
					t.Errorf("functional outcome diverged:\n  %v: %s\n  %v: %s",
						protocols[0], base, prot, summaries[prot])
				}
			}
		})
	}
}
