// Package kernels implements the 24 synchronization kernels of §5.3.1 and
// the driver that runs them the way the paper does: 100 iterations (1000
// for the FAI counter) with random-length dummy computation between
// iterations, and a closing tree barrier whose stall time is reported
// separately.
package kernels

import (
	"fmt"

	"denovosync/internal/alloc"
	"denovosync/internal/cpu"
	"denovosync/internal/locks"
	"denovosync/internal/mem"
	"denovosync/internal/proto"
)

// The lock-based concurrent data structures adapted from Michael & Scott
// [29]: a single-lock ring queue, the two-lock linked queue, a stack, a
// binary heap (whose rebalancing traversal is the data-access pattern
// §7.1.2 discusses), a counter, and the synthetic "large CS" kernel.

// lockQueue is a circular buffer protected by one lock.
type lockQueue struct {
	lock       locks.Lock
	head, tail proto.Addr // indices
	buf        proto.Addr
	capacity   int
}

func newLockQueue(s *alloc.Space, st *mem.Store, lock locks.Lock, region proto.RegionID, capacity, prefill int) *lockQueue {
	q := &lockQueue{
		lock:     lock,
		head:     s.AllocAligned(1, region),
		tail:     s.AllocAligned(1, region),
		buf:      s.AllocAligned(capacity, region),
		capacity: capacity,
	}
	for i := 0; i < prefill; i++ {
		st.Write(q.buf+proto.Addr(i*proto.WordBytes), uint64(i+1))
	}
	st.Write(q.tail, uint64(prefill))
	return q
}

func (q *lockQueue) enqueue(t *cpu.Thread, v uint64) bool {
	tk := q.lock.Acquire(t)
	defer q.lock.Release(t, tk)
	h, tl := t.Load(q.head), t.Load(q.tail)
	if tl-h >= uint64(q.capacity) {
		return false
	}
	t.Store(q.buf+proto.Addr(int(tl)%q.capacity*proto.WordBytes), v)
	t.Store(q.tail, tl+1)
	return true
}

// size reads the resident element count from the final memory image.
func (q *lockQueue) size(st *mem.Store) uint64 {
	return st.Read(q.tail) - st.Read(q.head)
}

func (q *lockQueue) dequeue(t *cpu.Thread) (uint64, bool) {
	tk := q.lock.Acquire(t)
	defer q.lock.Release(t, tk)
	h, tl := t.Load(q.head), t.Load(q.tail)
	if h == tl {
		return 0, false
	}
	v := t.Load(q.buf + proto.Addr(int(h)%q.capacity*proto.WordBytes))
	t.Store(q.head, h+1)
	return v, true
}

// twoLockQueue is the Michael-Scott two-lock linked queue: enqueuers
// serialize on the tail lock, dequeuers on the head lock. The node next
// links are synchronization accesses (the empty↔non-empty handoff races
// between the two locks).
type twoLockQueue struct {
	headLock, tailLock locks.Lock
	head, tail         proto.Addr
	space              *alloc.Space
	region             proto.RegionID
}

const (
	tlqValue = 0
	tlqNext  = proto.WordBytes
)

func newTwoLockQueue(s *alloc.Space, st *mem.Store, headLock, tailLock locks.Lock, region proto.RegionID) *twoLockQueue {
	q := &twoLockQueue{
		headLock: headLock, tailLock: tailLock,
		head:  s.AllocAligned(1, region),
		tail:  s.AllocAligned(1, region),
		space: s, region: region,
	}
	dummy := s.AllocAligned(2, region)
	st.Write(q.head, uint64(dummy))
	st.Write(q.tail, uint64(dummy))
	return q
}

func (q *twoLockQueue) enqueue(t *cpu.Thread, v uint64) bool {
	t.Flush() // pin the carve to the current simulated time
	node := q.space.LaneAllocAligned(t.ID, 2, q.region)
	t.Store(node+tlqValue, v)
	t.SyncStore(node+tlqNext, 0)
	tk := q.tailLock.Acquire(t)
	last := t.Load(q.tail)
	t.SyncStore(proto.Addr(last)+tlqNext, uint64(node))
	t.Store(q.tail, uint64(node))
	q.tailLock.Release(t, tk)
	return true
}

// size walks the list in the final memory image, counting resident
// elements (nodes after the dummy). limit bounds the walk so a corrupted
// next chain cannot loop forever.
func (q *twoLockQueue) size(st *mem.Store, limit int) (uint64, error) {
	var n uint64
	node := proto.Addr(st.Read(q.head))
	for {
		next := st.Read(node + tlqNext)
		if next == 0 {
			return n, nil
		}
		if n++; int(n) > limit {
			return 0, fmt.Errorf("two-lock queue: next chain exceeds %d nodes", limit)
		}
		node = proto.Addr(next)
	}
}

func (q *twoLockQueue) dequeue(t *cpu.Thread) (uint64, bool) {
	tk := q.headLock.Acquire(t)
	defer q.headLock.Release(t, tk)
	dummy := t.Load(q.head)
	next := t.SyncLoad(proto.Addr(dummy) + tlqNext)
	if next == 0 {
		return 0, false
	}
	v := t.Load(proto.Addr(next) + tlqValue)
	t.Store(q.head, next)
	return v, true
}

// lockStack is an array stack protected by one lock.
type lockStack struct {
	lock     locks.Lock
	top      proto.Addr // element count
	buf      proto.Addr
	capacity int
}

func newLockStack(s *alloc.Space, st *mem.Store, lock locks.Lock, region proto.RegionID, capacity, prefill int) *lockStack {
	k := &lockStack{
		lock:     lock,
		top:      s.AllocAligned(1, region),
		buf:      s.AllocAligned(capacity, region),
		capacity: capacity,
	}
	for i := 0; i < prefill; i++ {
		st.Write(k.buf+proto.Addr(i*proto.WordBytes), uint64(i+1))
	}
	st.Write(k.top, uint64(prefill))
	return k
}

func (k *lockStack) push(t *cpu.Thread, v uint64) bool {
	tk := k.lock.Acquire(t)
	defer k.lock.Release(t, tk)
	top := t.Load(k.top)
	if int(top) >= k.capacity {
		return false
	}
	t.Store(k.buf+proto.Addr(int(top)*proto.WordBytes), v)
	t.Store(k.top, top+1)
	return true
}

// size reads the resident element count from the final memory image.
func (k *lockStack) size(st *mem.Store) uint64 { return st.Read(k.top) }

func (k *lockStack) pop(t *cpu.Thread) (uint64, bool) {
	tk := k.lock.Acquire(t)
	defer k.lock.Release(t, tk)
	top := t.Load(k.top)
	if top == 0 {
		return 0, false
	}
	v := t.Load(k.buf + proto.Addr(int(top-1)*proto.WordBytes))
	t.Store(k.top, top-1)
	return v, true
}

// lockHeap is a lock-protected binary min-heap. Its insert/extract sift
// operations traverse data-dependent paths through the array — the
// unpredictable access pattern that makes DeNovo's conservative static
// self-invalidation expensive (§7.1.2).
type lockHeap struct {
	lock     locks.Lock
	count    proto.Addr
	buf      proto.Addr
	capacity int
}

func newLockHeap(s *alloc.Space, st *mem.Store, lock locks.Lock, region proto.RegionID, capacity, prefill int) *lockHeap {
	h := &lockHeap{
		lock:     lock,
		count:    s.AllocAligned(1, region),
		buf:      s.AllocAligned(capacity, region),
		capacity: capacity,
	}
	// Prefill with an ascending sequence: already a valid min-heap.
	for i := 0; i < prefill; i++ {
		st.Write(h.buf+proto.Addr(i*proto.WordBytes), uint64(i*3+1))
	}
	st.Write(h.count, uint64(prefill))
	return h
}

func (h *lockHeap) at(i int) proto.Addr { return h.buf + proto.Addr(i*proto.WordBytes) }

func (h *lockHeap) insert(t *cpu.Thread, v uint64) bool {
	tk := h.lock.Acquire(t)
	defer h.lock.Release(t, tk)
	n := int(t.Load(h.count))
	if n >= h.capacity {
		return false
	}
	t.Store(h.at(n), v)
	i := n
	for i > 0 {
		p := (i - 1) / 2
		pv, cv := t.Load(h.at(p)), t.Load(h.at(i))
		if pv <= cv {
			break
		}
		t.Store(h.at(p), cv)
		t.Store(h.at(i), pv)
		i = p
	}
	t.Store(h.count, uint64(n+1))
	return true
}

// size reads the element count from the final memory image and validates
// the min-heap property over it. Sift loops reload words their own
// just-issued stores wrote, so a mis-sorted array here would mean an L1
// model lost store→load forwarding (the gap the MESI storeFwd buffer
// closes); the differential harness compares the returned summary across
// all three protocols on top of that.
func (h *lockHeap) size(st *mem.Store) (uint64, error) {
	n := int(st.Read(h.count))
	if n > h.capacity {
		return 0, fmt.Errorf("lock heap: count %d exceeds capacity %d", n, h.capacity)
	}
	for i := 1; i < n; i++ {
		p, c := st.Read(h.at((i-1)/2)), st.Read(h.at(i))
		if p > c {
			return 0, fmt.Errorf("lock heap: min-heap violation at %d: parent %d > child %d", i, p, c)
		}
	}
	return uint64(n), nil
}

func (h *lockHeap) extractMin(t *cpu.Thread) (uint64, bool) {
	tk := h.lock.Acquire(t)
	defer h.lock.Release(t, tk)
	n := int(t.Load(h.count))
	if n == 0 {
		return 0, false
	}
	min := t.Load(h.at(0))
	last := t.Load(h.at(n - 1))
	t.Store(h.at(0), last)
	n--
	t.Store(h.count, uint64(n))
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		sv := t.Load(h.at(i))
		if l < n {
			if lv := t.Load(h.at(l)); lv < sv {
				smallest, sv = l, lv
			}
		}
		if r < n {
			if rv := t.Load(h.at(r)); rv < sv {
				smallest, sv = r, rv
			}
		}
		if smallest == i {
			break
		}
		iv := t.Load(h.at(i))
		t.Store(h.at(i), sv)
		t.Store(h.at(smallest), iv)
		i = smallest
	}
	return min, true
}

// lockCounter is a data counter protected by a lock.
type lockCounter struct {
	lock locks.Lock
	addr proto.Addr
}

func newLockCounter(s *alloc.Space, lock locks.Lock, region proto.RegionID) *lockCounter {
	return &lockCounter{lock: lock, addr: s.AllocAligned(1, region)}
}

func (c *lockCounter) increment(t *cpu.Thread) {
	tk := c.lock.Acquire(t)
	v := t.Load(c.addr)
	t.Store(c.addr, v+1)
	c.lock.Release(t, tk)
}

// total reads the counter's final value from the memory image.
func (c *lockCounter) total(st *mem.Store) uint64 { return st.Read(c.addr) }

// largeCS is the synthetic fixed-length large-critical-section kernel:
// each entry reads and writes `accesses` words of a shared array and burns
// some compute inside the lock.
type largeCS struct {
	lock     locks.Lock
	buf      proto.Addr
	words    int
	accesses int
}

func newLargeCS(s *alloc.Space, lock locks.Lock, region proto.RegionID, words, accesses int) *largeCS {
	return &largeCS{
		lock:     lock,
		buf:      s.AllocAligned(words, region),
		words:    words,
		accesses: accesses,
	}
}

// sum totals the shared array in the final memory image: every critical
// section increments `accesses` words by one, so with no lost updates the
// sum is exactly cores × iters × accesses.
func (l *largeCS) sum(st *mem.Store) uint64 {
	var s uint64
	for i := 0; i < l.words; i++ {
		s += st.Read(l.buf + proto.Addr(i*proto.WordBytes))
	}
	return s
}

func (l *largeCS) run(t *cpu.Thread, iter int) {
	tk := l.lock.Acquire(t)
	// A long critical section is long in *duration*: mostly computation
	// over a handful of shared words (the paper's point is the many-waiter
	// scenario, §6.1.1, not a data-heavy section).
	for k := 0; k < l.accesses; k++ {
		idx := (iter*7 + k*3) % l.words
		a := l.buf + proto.Addr(idx*proto.WordBytes)
		v := t.Load(a)
		t.Compute(100)
		t.Store(a, v+1)
	}
	t.Fence()
	l.lock.Release(t, tk)
}
