package kernels

import (
	"fmt"

	"denovosync/internal/alloc"
	"denovosync/internal/barrier"
	"denovosync/internal/cpu"
	"denovosync/internal/lockfree"
	"denovosync/internal/locks"
	"denovosync/internal/machine"
	"denovosync/internal/mem"
	"denovosync/internal/proto"
	"denovosync/internal/sim"
	"denovosync/internal/stats"
)

// Group classifies kernels the way Figures 3–6 do.
type Group int

const (
	LockTATAS   Group = iota // Figure 3
	LockArray                // Figure 4
	NonBlocking              // Figure 5
	Barriers                 // Figure 6
)

func (g Group) String() string {
	switch g {
	case LockTATAS:
		return "tatas"
	case LockArray:
		return "array"
	case NonBlocking:
		return "nonblocking"
	case Barriers:
		return "barrier"
	}
	return fmt.Sprintf("Group(%d)", int(g))
}

// Config tunes a kernel run; the zero value plus Cores reproduces the
// paper's setup, and the remaining fields drive the §7.1 ablations.
type Config struct {
	Cores int
	Iters int // 0 = kernel default (100; 1000 for FAI counter)

	// NonSynch dummy-computation range; zero = paper defaults
	// ([1400,1800) at 16 cores, [6200,6600) at 64).
	NonSynchMin, NonSynchMax sim.Cycle

	// LockBackoff adds software exponential backoff to TATAS acquires
	// (§7.1.1 sensitivity study). Zero = no software backoff.
	LockBackoff locks.BackoffRange

	// NoPadding places lock words unpadded (the §7.1.1 padding ablation).
	NoPadding bool

	// EqChecks overrides the Herlihy kernels' extra equality checks; -1
	// keeps the as-adapted default (2). 0 is the §7.1.3 reduced version.
	EqChecks int

	// NBBackoff overrides the non-blocking kernels' software backoff
	// window; nil = the paper's [128, 2048).
	NBBackoff *lockfree.Backoff

	// UseSignatures switches lock-based kernels from region-based static
	// self-invalidation to DeNovoND-style dynamic write signatures (the
	// machine must be built with Params.Signatures = true).
	UseSignatures bool

	// InvalidateAll makes every lock acquire self-invalidate ALL regions —
	// the §3 "no further information" fallback ("invalidating all (shared,
	// writable) data that is not registered"). Measures what the static
	// region annotations buy.
	InvalidateAll bool

	// ForceMCS replaces every kernel lock with the MCS list-based queuing
	// lock (the other [4] flavor), regardless of the kernel's group — the
	// alternative-locks extension study.
	ForceMCS bool
}

func (c Config) iters(def int) int {
	if c.Iters > 0 {
		return c.Iters
	}
	return def
}

func (c Config) nonSynch() (sim.Cycle, sim.Cycle) {
	if c.NonSynchMax > c.NonSynchMin {
		return c.NonSynchMin, c.NonSynchMax
	}
	if c.Cores >= 64 {
		return 6200, 6600
	}
	return 1400, 1800
}

func (c Config) unbalanced() (sim.Cycle, sim.Cycle) {
	if c.Cores >= 64 {
		return 1600, 11200
	}
	return 400, 2800
}

func (c Config) eqChecks() int {
	if c.EqChecks >= 0 {
		return c.EqChecks
	}
	return 2
}

func (c Config) nbBackoff() lockfree.Backoff {
	if c.NBBackoff != nil {
		return *c.NBBackoff
	}
	return lockfree.DefaultBackoff()
}

// iterFunc is one kernel iteration executed by thread t.
type iterFunc func(t *cpu.Thread, i int)

// checkFunc validates functional correctness after the run.
type checkFunc func(st *mem.Store) error

// summaryFunc renders a canonical summary of the kernel's functional
// outcome from the final memory image — element counts, counter totals,
// barrier arrivals. The summary is protocol-invariant by construction
// (interleaving-dependent quantities like element order are excluded), so
// the cross-protocol differential test requires it to be identical on
// MESI, DeNovoSync0, and DeNovoSync. The error reports structural
// corruption (broken heap property, dangling chain, overflow).
type summaryFunc func(st *mem.Store) (string, error)

// Kernel is one of the paper's 24 synchronization kernels.
type Kernel struct {
	ID           string // unique slug, e.g. "tatas-single-q"
	Name         string // figure label, e.g. "single Q"
	Group        Group
	DefaultIters int

	// selfDriven kernels (barriers) embed their own dummy computation.
	selfDriven bool

	build func(c Config, s *alloc.Space, st *mem.Store) (iterFunc, checkFunc, summaryFunc)
}

// newLock builds the group's lock flavor over the given protected regions.
func newLock(g Group, c Config, s *alloc.Space, protect proto.RegionSet, name string) locks.Lock {
	if c.InvalidateAll {
		protect = proto.AllRegions
	}
	region := s.Region("lock." + name)
	if c.ForceMCS {
		l := locks.NewMCS(s, region, protect, maxInt(c.Cores, 2))
		l.Signatures = c.UseSignatures
		return l
	}
	if g == LockArray {
		l := locks.NewArray(s, region, protect, maxInt(c.Cores, 2))
		l.Signatures = c.UseSignatures
		return l
	}
	l := locks.NewTATAS(s, region, protect, !c.NoPadding)
	l.SetBackoff(c.LockBackoff)
	l.Signatures = c.UseSignatures
	return l
}

// presetLocks initializes array locks in the memory image.
func presetLocks(st *mem.Store, ls ...locks.Lock) {
	for _, l := range ls {
		if a, ok := l.(*locks.Array); ok {
			st.Write(a.SlotAddr(0), 1)
		}
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// lockKernels builds the six lock-based kernels for a lock flavor
// (Figure 3 with TATAS, Figure 4 with array locks).
func lockKernels(g Group) []Kernel {
	mk := func(name string, build func(c Config, s *alloc.Space, st *mem.Store) (iterFunc, checkFunc, summaryFunc)) Kernel {
		return Kernel{
			ID:           fmt.Sprintf("%s-%s", g, slug(name)),
			Name:         name,
			Group:        g,
			DefaultIters: 100,
			build:        build,
		}
	}
	return []Kernel{
		mk("single Q", func(c Config, s *alloc.Space, st *mem.Store) (iterFunc, checkFunc, summaryFunc) {
			region := s.Region("singleq.data")
			lock := newLock(g, c, s, proto.NewRegionSet(region), "singleq")
			presetLocks(st, lock)
			q := newLockQueue(s, st, lock, region, 4*c.Cores, c.Cores)
			return func(t *cpu.Thread, i int) {
					q.enqueue(t, uint64(t.ID*100000+i))
					q.dequeue(t)
				}, nil, func(st *mem.Store) (string, error) {
					// Every iteration enqueues then dequeues, so the queue
					// must return to its prefill size.
					size := q.size(st)
					if size != uint64(c.Cores) {
						return "", fmt.Errorf("single Q: size %d, want %d", size, c.Cores)
					}
					return fmt.Sprintf("size=%d", size), nil
				}
		}),
		mk("double Q", func(c Config, s *alloc.Space, st *mem.Store) (iterFunc, checkFunc, summaryFunc) {
			region := s.Region("doubleq.data")
			hl := newLock(g, c, s, proto.NewRegionSet(region), "doubleq.head")
			tl := newLock(g, c, s, proto.NewRegionSet(region), "doubleq.tail")
			presetLocks(st, hl, tl)
			q := newTwoLockQueue(s, st, hl, tl, region)
			iters := c.iters(100)
			return func(t *cpu.Thread, i int) {
					q.enqueue(t, uint64(t.ID*100000+i))
					q.dequeue(t)
				}, nil, func(st *mem.Store) (string, error) {
					size, err := q.size(st, c.Cores*iters+1)
					if err != nil {
						return "", err
					}
					if size != 0 {
						return "", fmt.Errorf("double Q: size %d, want 0", size)
					}
					return fmt.Sprintf("size=%d", size), nil
				}
		}),
		mk("stack", func(c Config, s *alloc.Space, st *mem.Store) (iterFunc, checkFunc, summaryFunc) {
			region := s.Region("lstack.data")
			lock := newLock(g, c, s, proto.NewRegionSet(region), "lstack")
			presetLocks(st, lock)
			k := newLockStack(s, st, lock, region, 4*c.Cores, c.Cores)
			return func(t *cpu.Thread, i int) {
					k.push(t, uint64(t.ID*100000+i))
					k.pop(t)
				}, nil, func(st *mem.Store) (string, error) {
					size := k.size(st)
					if size != uint64(c.Cores) {
						return "", fmt.Errorf("stack: size %d, want %d", size, c.Cores)
					}
					return fmt.Sprintf("size=%d", size), nil
				}
		}),
		mk("heap", func(c Config, s *alloc.Space, st *mem.Store) (iterFunc, checkFunc, summaryFunc) {
			region := s.Region("lheap.data")
			lock := newLock(g, c, s, proto.NewRegionSet(region), "lheap")
			presetLocks(st, lock)
			h := newLockHeap(s, st, lock, region, 64, 12)
			return func(t *cpu.Thread, i int) {
					h.insert(t, uint64((t.ID*31+i*17)%1000))
					h.extractMin(t)
				}, nil, func(st *mem.Store) (string, error) {
					size, err := h.size(st)
					if err != nil {
						return "", err
					}
					// The count never drops below the prefill (each thread
					// inserts before extracting), so extracts always succeed
					// and insert/extract pairs conserve it — as long as no
					// insert can hit capacity, which needs prefill + one
					// in-flight insert per core to fit.
					if c.Cores+12 <= 64 && size != 12 {
						return "", fmt.Errorf("heap: size %d, want 12", size)
					}
					return fmt.Sprintf("size=%d", size), nil
				}
		}),
		mk("counter", func(c Config, s *alloc.Space, st *mem.Store) (iterFunc, checkFunc, summaryFunc) {
			region := s.Region("lcounter.data")
			lock := newLock(g, c, s, proto.NewRegionSet(region), "lcounter")
			presetLocks(st, lock)
			ctr := newLockCounter(s, lock, region)
			iters := c.iters(100)
			return func(t *cpu.Thread, i int) {
					ctr.increment(t)
				}, func(st *mem.Store) error {
					want := uint64(c.Cores * iters)
					if got := st.Read(ctr.addr); got != want {
						return fmt.Errorf("counter = %d, want %d", got, want)
					}
					return nil
				}, func(st *mem.Store) (string, error) {
					return fmt.Sprintf("total=%d", ctr.total(st)), nil
				}
		}),
		mk("large CS", func(c Config, s *alloc.Space, st *mem.Store) (iterFunc, checkFunc, summaryFunc) {
			region := s.Region("largecs.data")
			lock := newLock(g, c, s, proto.NewRegionSet(region), "largecs")
			presetLocks(st, lock)
			l := newLargeCS(s, lock, region, 32, 6)
			iters := c.iters(100)
			return func(t *cpu.Thread, i int) { l.run(t, i) },
				nil, func(st *mem.Store) (string, error) {
					sum := l.sum(st)
					if want := uint64(c.Cores * iters * l.accesses); sum != want {
						return "", fmt.Errorf("large CS: array sum %d, want %d (lost update)", sum, want)
					}
					return fmt.Sprintf("sum=%d", sum), nil
				}
		}),
	}
}

// nonBlockingKernels builds the six Figure 5 kernels.
func nonBlockingKernels() []Kernel {
	mk := func(name string, iters int, build func(c Config, s *alloc.Space, st *mem.Store) (iterFunc, checkFunc, summaryFunc)) Kernel {
		return Kernel{
			ID:           "nb-" + slug(name),
			Name:         name,
			Group:        NonBlocking,
			DefaultIters: iters,
			build:        build,
		}
	}
	// sizeSummary adapts a chain-walking Size into a summaryFunc expecting
	// the balanced push/pop workload to leave exactly `want` elements.
	sizeSummary := func(size func(st *mem.Store) (uint64, error), want uint64) summaryFunc {
		return func(st *mem.Store) (string, error) {
			n, err := size(st)
			if err != nil {
				return "", err
			}
			if n != want {
				return "", fmt.Errorf("size %d, want %d", n, want)
			}
			return fmt.Sprintf("size=%d", n), nil
		}
	}
	return []Kernel{
		mk("M-S queue", 100, func(c Config, s *alloc.Space, st *mem.Store) (iterFunc, checkFunc, summaryFunc) {
			q := lockfree.NewMSQueue(s, st)
			q.Backoff = c.nbBackoff()
			limit := c.Cores*c.iters(100) + 1
			return func(t *cpu.Thread, i int) {
				q.Enqueue(t, uint64(t.ID*100000+i))
				q.Dequeue(t)
			}, nil, sizeSummary(func(st *mem.Store) (uint64, error) { return q.Size(st, limit) }, 0)
		}),
		mk("PLJ queue", 100, func(c Config, s *alloc.Space, st *mem.Store) (iterFunc, checkFunc, summaryFunc) {
			q := lockfree.NewPLJQueue(s, st)
			q.Backoff = c.nbBackoff()
			limit := c.Cores*c.iters(100) + 1
			return func(t *cpu.Thread, i int) {
				q.Enqueue(t, uint64(t.ID*100000+i))
				q.Dequeue(t)
			}, nil, sizeSummary(func(st *mem.Store) (uint64, error) { return q.Size(st, limit) }, 0)
		}),
		mk("Treiber stack", 100, func(c Config, s *alloc.Space, st *mem.Store) (iterFunc, checkFunc, summaryFunc) {
			k := lockfree.NewTreiberStack(s, st)
			k.Backoff = c.nbBackoff()
			limit := c.Cores*c.iters(100) + 1
			return func(t *cpu.Thread, i int) {
				k.Push(t, uint64(t.ID*100000+i))
				k.Pop(t)
			}, nil, sizeSummary(func(st *mem.Store) (uint64, error) { return k.Size(st, limit) }, 0)
		}),
		mk("Herlihy stack", 100, func(c Config, s *alloc.Space, st *mem.Store) (iterFunc, checkFunc, summaryFunc) {
			k := lockfree.NewHerlihyStack(s, st, 4*c.Cores)
			k.ExtraChecks = c.eqChecks()
			k.Backoff = c.nbBackoff()
			return func(t *cpu.Thread, i int) {
				k.Push(t, uint64(t.ID*100000+i))
				k.Pop(t)
			}, nil, sizeSummary(k.Size, 0)
		}),
		mk("Herlihy heap", 100, func(c Config, s *alloc.Space, st *mem.Store) (iterFunc, checkFunc, summaryFunc) {
			k := lockfree.NewHerlihyHeap(s, st, 48)
			k.ExtraChecks = c.eqChecks()
			k.Backoff = c.nbBackoff()
			return func(t *cpu.Thread, i int) {
					k.Insert(t, uint64((t.ID*29+i*13)%997))
					k.DeleteMin(t)
				}, nil, func(st *mem.Store) (string, error) {
					n, err := k.Size(st)
					if err != nil {
						return "", err
					}
					// With fewer threads than capacity no insert can drop,
					// so balanced insert/delete pairs must drain the heap.
					// At ≥48 cores drops are legitimate and the final size
					// is interleaving-dependent, so only report it.
					if c.Cores < 48 && n != 0 {
						return "", fmt.Errorf("herlihy heap: size %d, want 0", n)
					}
					return fmt.Sprintf("size=%d heap-ok", n), nil
				}
		}),
		mk("FAI counter", 1000, func(c Config, s *alloc.Space, st *mem.Store) (iterFunc, checkFunc, summaryFunc) {
			k := lockfree.NewFAICounter(s, st)
			iters := c.iters(1000)
			return func(t *cpu.Thread, i int) {
					k.Increment(t)
				}, func(st *mem.Store) error {
					want := uint64(c.Cores * iters)
					if got := st.Read(k.Addr()); got != want {
						return fmt.Errorf("FAI counter = %d, want %d", got, want)
					}
					return nil
				}, func(st *mem.Store) (string, error) {
					return fmt.Sprintf("total=%d", k.Total(st)), nil
				}
		}),
	}
}

// barrierKernels builds the six Figure 6 kernels: binary tree, n-ary tree
// (fan-in 4 / fan-out 2), and centralized sense-reversing, each in a
// balanced and an unbalanced (UB) variant. Each iteration executes two
// barrier instances around dummy computation (§5.3.1).
func barrierKernels() []Kernel {
	mk := func(name string, unbal bool, newBar func(s *alloc.Space, n int) barrier.Barrier) Kernel {
		return Kernel{
			ID:           "bar-" + slug(name),
			Name:         name,
			Group:        Barriers,
			DefaultIters: 100,
			selfDriven:   true,
			build: func(c Config, s *alloc.Space, st *mem.Store) (iterFunc, checkFunc, summaryFunc) {
				b := newBar(s, c.Cores)
				lo, hi := c.nonSynch()
				if unbal {
					lo, hi = c.unbalanced()
				}
				// arrivals[i] counts thread i's completed barrier passes;
				// each goroutine writes only its own slot (race-free).
				arrivals := make([]uint64, c.Cores)
				iters := c.iters(100)
				return func(t *cpu.Thread, i int) {
						t.SetPhase(cpu.PhaseNonSynch)
						t.Compute(t.RNG.Cycles(lo, hi))
						t.SetPhase(cpu.PhaseKernel)
						b.Wait(t)
						arrivals[t.ID]++
						t.SetPhase(cpu.PhaseNonSynch)
						t.Compute(t.RNG.Cycles(lo, hi))
						t.SetPhase(cpu.PhaseKernel)
						b.Wait(t)
						arrivals[t.ID]++
					}, nil, func(st *mem.Store) (string, error) {
						var total uint64
						for i, a := range arrivals {
							if want := uint64(2 * iters); a != want {
								return "", fmt.Errorf("barrier: thread %d passed %d barriers, want %d", i, a, want)
							}
							total += a
						}
						return fmt.Sprintf("arrivals=%d", total), nil
					}
			},
		}
	}
	tree := func(s *alloc.Space, n int) barrier.Barrier {
		return barrier.NewTree(s, s.Region("bar"), 0, n, 2, 2)
	}
	nary := func(s *alloc.Space, n int) barrier.Barrier {
		return barrier.NewTree(s, s.Region("bar"), 0, n, 4, 2)
	}
	central := func(s *alloc.Space, n int) barrier.Barrier {
		return barrier.NewCentral(s, s.Region("bar"), 0, n)
	}
	return []Kernel{
		mk("tree", false, tree),
		mk("n-ary", false, nary),
		mk("central", false, central),
		mk("tree (UB)", true, tree),
		mk("n-ary (UB)", true, nary),
		mk("central (UB)", true, central),
	}
}

// All returns the paper's 24 kernels in figure order.
func All() []Kernel {
	var ks []Kernel
	ks = append(ks, lockKernels(LockTATAS)...)
	ks = append(ks, lockKernels(LockArray)...)
	ks = append(ks, nonBlockingKernels()...)
	ks = append(ks, barrierKernels()...)
	return ks
}

// ByGroup returns the kernels of one figure.
func ByGroup(g Group) []Kernel {
	var out []Kernel
	for _, k := range All() {
		if k.Group == g {
			out = append(out, k)
		}
	}
	return out
}

// ByID finds a kernel by its slug.
func ByID(id string) (Kernel, bool) {
	for _, k := range All() {
		if k.ID == id {
			return k, true
		}
	}
	return Kernel{}, false
}

// slug converts a figure label into an identifier.
func slug(name string) string {
	out := make([]rune, 0, len(name))
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9':
			out = append(out, r)
		case r >= 'A' && r <= 'Z':
			out = append(out, r-'A'+'a')
		case r == ' ' || r == '-':
			out = append(out, '-')
		}
	}
	return string(out)
}

// Run executes kernel k on machine m per the paper's protocol: per
// iteration a non-synch dummy computation then the kernel body, and a
// closing binary-tree barrier (whose stall time shows up as the barrier
// component for non-barrier kernels).
func Run(k Kernel, m *machine.Machine, c Config) (*stats.RunStats, error) {
	rs, _, err := RunWithSummary(k, m, c)
	return rs, err
}

// RunWithSummary executes like Run and additionally returns the kernel's
// canonical functional summary (element counts, totals, arrivals) rendered
// from the final memory image. The summary is protocol-invariant: the
// cross-protocol differential test requires MESI, DeNovoSync0, and
// DeNovoSync to produce identical summaries for every kernel.
func RunWithSummary(k Kernel, m *machine.Machine, c Config) (*stats.RunStats, string, error) {
	if c.Cores == 0 {
		c.Cores = m.Params.Cores
	}
	if c.Cores != m.Params.Cores {
		return nil, "", fmt.Errorf("kernels: config cores %d != machine cores %d", c.Cores, m.Params.Cores)
	}
	iter, check, summarize := k.build(c, m.Space, m.Store)
	endBar := barrier.NewTree(m.Space, m.Space.Region("kernels.endbar"), 0, c.Cores, 2, 2)
	iters := c.iters(k.DefaultIters)
	lo, hi := c.nonSynch()
	rs, err := m.Run(k.Name, func(t *cpu.Thread) {
		for i := 0; i < iters; i++ {
			if !k.selfDriven {
				t.SetPhase(cpu.PhaseNonSynch)
				t.Compute(t.RNG.Cycles(lo, hi))
				t.SetPhase(cpu.PhaseKernel)
			}
			iter(t, i)
		}
		t.SetPhase(cpu.PhaseBarrier)
		endBar.Wait(t)
	})
	if err != nil {
		return nil, "", err
	}
	if check != nil {
		if err := check(m.Store); err != nil {
			return nil, "", fmt.Errorf("kernels: %s functional check: %w", k.ID, err)
		}
	}
	var summary string
	if summarize != nil {
		summary, err = summarize(m.Store)
		if err != nil {
			return nil, "", fmt.Errorf("kernels: %s functional summary: %w", k.ID, err)
		}
	}
	return rs, summary, nil
}
