package backoff

import (
	"testing"
	"time"
)

func TestZeroPolicyNeverDelays(t *testing.T) {
	var p Policy
	for n := 0; n < 10; n++ {
		if d := p.Delay(n); d != 0 {
			t.Fatalf("zero policy Delay(%d) = %v, want 0", n, d)
		}
	}
	if !p.Sleep(3, nil) {
		t.Fatalf("zero policy Sleep returned false")
	}
}

func TestScheduleIsDeterministic(t *testing.T) {
	a := Policy{Base: 10 * time.Millisecond, Max: time.Second, Seed: 42}
	b := Policy{Base: 10 * time.Millisecond, Max: time.Second, Seed: 42}
	for n := 1; n <= 12; n++ {
		if a.Delay(n) != b.Delay(n) {
			t.Fatalf("same policy diverged at attempt %d: %v vs %v", n, a.Delay(n), b.Delay(n))
		}
	}
	c := a
	c.Seed = 43
	same := true
	for n := 1; n <= 12; n++ {
		if a.Delay(n) != c.Delay(n) {
			same = false
		}
	}
	if same {
		t.Fatalf("different seeds produced an identical 12-attempt schedule")
	}
}

// TestScheduleShape pins the exponential envelope: every delay lies in
// [nominal/2, nominal], nominals double from Base, and the cap holds.
func TestScheduleShape(t *testing.T) {
	p := Policy{Base: 8 * time.Millisecond, Max: 100 * time.Millisecond, Seed: 7}
	nominals := []time.Duration{
		8 * time.Millisecond,   // attempt 1
		16 * time.Millisecond,  // 2
		32 * time.Millisecond,  // 3
		64 * time.Millisecond,  // 4
		100 * time.Millisecond, // 5: capped
		100 * time.Millisecond, // 6: stays capped
	}
	for i, nom := range nominals {
		attempt := i + 1
		d := p.Delay(attempt)
		if d < nom/2 || d > nom {
			t.Errorf("Delay(%d) = %v outside jitter window [%v, %v]", attempt, d, nom/2, nom)
		}
	}
	if d := p.Delay(0); d != 0 {
		t.Errorf("Delay(0) = %v, want 0 (attempts are 1-based)", d)
	}
}

func TestMaxDefaultsTo64xBase(t *testing.T) {
	p := Policy{Base: time.Millisecond, Seed: 1}
	for n := 1; n <= 30; n++ {
		if d := p.Delay(n); d > 64*time.Millisecond {
			t.Fatalf("Delay(%d) = %v exceeds the default 64×Base cap", n, d)
		}
	}
	// The cap must actually be reached, not undershot forever.
	if d := p.Delay(20); d < 32*time.Millisecond {
		t.Fatalf("Delay(20) = %v, want >= half the 64ms cap", d)
	}
}

// TestOverflowSafety: a huge attempt number with a large Max must not
// wrap negative.
func TestOverflowSafety(t *testing.T) {
	p := Policy{Base: time.Second, Max: 1 << 62, Seed: 9}
	for _, n := range []int{40, 63, 64, 100, 1 << 20} {
		if d := p.Delay(n); d < 0 || d > 1<<62 {
			t.Fatalf("Delay(%d) = %v out of range", n, d)
		}
	}
}

func TestDeriveSeedSeparatesKeys(t *testing.T) {
	s1 := DeriveSeed(1, "aaaa")
	s2 := DeriveSeed(1, "bbbb")
	if s1 == s2 {
		t.Fatalf("distinct keys derived the same seed")
	}
	if DeriveSeed(1, "aaaa") != s1 {
		t.Fatalf("DeriveSeed is not stable")
	}
	p := Policy{Base: time.Millisecond, Seed: 1}
	if p.Keyed("aaaa").Seed != s1 {
		t.Fatalf("Keyed does not use DeriveSeed")
	}
}

func TestSleepHonorsCancel(t *testing.T) {
	p := Policy{Base: time.Hour, Seed: 3}
	cancel := make(chan struct{})
	close(cancel)
	start := time.Now()
	if p.Sleep(1, cancel) {
		t.Fatalf("Sleep ignored a closed cancel channel")
	}
	if time.Since(start) > time.Second {
		t.Fatalf("cancelled Sleep still slept")
	}
}
