// Package backoff is the repo's one retry-delay policy: exponential
// backoff with deterministic seeded jitter. It was extracted from
// internal/exp so that experiment run retries and the fabric's
// worker→coordinator RPCs share a single schedule, and so that schedule
// is a pure function of (seed, attempt) — two processes configured with
// the same policy produce the same delays, which is what makes the
// fault-injection batteries replayable.
//
// The package is inside the simlint determinism scope on purpose: even
// though everything above it is host-service code free to read wall
// clocks, the *schedule* itself must never depend on one. Delay is a
// pure function; only Sleep touches the host timer, and it sleeps for a
// duration computed before it looks at any clock.
package backoff

import (
	"fmt"
	"time"
)

// Policy is an exponential-backoff schedule with seeded half-jitter.
// The zero value is a usable "no delay" policy (every Delay is 0), which
// preserves the retry-immediately behavior callers had before the
// extraction.
type Policy struct {
	// Base is the nominal delay before the first retry; successive
	// attempts double it. Base <= 0 disables delays entirely.
	Base time.Duration

	// Max caps the nominal (pre-jitter) delay. Max <= 0 defaults to
	// 64 × Base, bounding the doubling at attempt 7.
	Max time.Duration

	// Seed selects the jitter stream. Two policies with equal
	// (Base, Max, Seed) produce identical schedules.
	Seed uint64
}

// splitmix64 is the standard SplitMix64 output function: a bijective
// avalanche mix, so consecutive attempt numbers yield well-distributed
// jitter. It is stateless — determinism comes for free.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// DeriveSeed folds a string key into a policy sub-seed (FNV-1a 64 mixed
// with the base seed), so every run key retries on an independent jitter
// stream while the whole schedule stays reproducible.
func DeriveSeed(seed uint64, key string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return splitmix64(h ^ seed)
}

// Keyed returns a copy of the policy whose jitter stream is derived from
// key (see DeriveSeed).
func (p Policy) Keyed(key string) Policy {
	p.Seed = DeriveSeed(p.Seed, key)
	return p
}

// nominal returns the un-jittered delay for attempt n (1-based): Base
// doubled n-1 times, clamped to the cap with overflow protection.
func (p Policy) nominal(attempt int) time.Duration {
	if p.Base <= 0 || attempt < 1 {
		return 0
	}
	max := p.Max
	if max <= 0 {
		max = 64 * p.Base
	}
	if max < p.Base {
		max = p.Base
	}
	d := p.Base
	for i := 1; i < attempt; i++ {
		if d >= max/2 {
			return max
		}
		d *= 2
	}
	if d > max {
		d = max
	}
	return d
}

// Delay returns the jittered delay to sleep before retry attempt n
// (1-based: Delay(1) precedes the first retry). Half-jitter: the result
// is uniform in [nominal/2, nominal], so delays never collapse to zero
// (retry storms) yet stay bounded by the nominal schedule. Pure
// function: same (policy, attempt) → same duration.
func (p Policy) Delay(attempt int) time.Duration {
	n := p.nominal(attempt)
	if n <= 0 {
		return 0
	}
	half := n / 2
	span := uint64(n-half) + 1
	j := splitmix64(p.Seed ^ uint64(attempt)) % span
	return half + time.Duration(j)
}

// Sleep blocks for Delay(attempt), returning early with false if cancel
// closes first (true otherwise, including zero-delay attempts). This is
// the only clock-touching function in the package; the duration it
// sleeps was fixed before any timer started.
func (p Policy) Sleep(attempt int, cancel <-chan struct{}) bool {
	d := p.Delay(attempt)
	if d <= 0 {
		select {
		case <-cancel:
			return false
		default:
			return true
		}
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-cancel:
		return false
	}
}

// String renders the policy for logs and flag defaults.
func (p Policy) String() string {
	if p.Base <= 0 {
		return "backoff(off)"
	}
	return fmt.Sprintf("backoff(base=%s, max=%s, seed=%d)", p.Base, p.nominal(1<<30), p.Seed)
}
