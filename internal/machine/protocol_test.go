package machine

import (
	"testing"

	"denovosync/internal/alloc"
	"denovosync/internal/cpu"
	"denovosync/internal/denovo"
	"denovosync/internal/proto"
	"denovosync/internal/sim"
)

// TestMESISpinIsLocal: a MESI core spinning on a cached flag generates no
// network traffic while waiting; the invalidation arrives only when the
// producer writes (§6.1.1: "waiting cores efficiently spin on a cached
// copy").
func TestMESISpinIsLocal(t *testing.T) {
	space := alloc.New()
	flag := space.AllocPadded(space.Region("sync"))
	m := New(small16(), MESI, space)
	var trafficBeforeWrite uint64
	_, err := m.Run("mesispin", func(th *cpu.Thread) {
		switch th.ID {
		case 5:
			_ = th.SyncLoad(flag) // fill
			th.SpinSyncLoadUntil(flag, func(v uint64) bool { return v == 1 })
		case 9:
			th.Compute(5000)
			th.Flush() // sample the network at simulated time 5000
			trafficBeforeWrite = m.Net.TotalTraffic()
			th.SyncStore(flag, 1)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// Between the consumer's fill and the producer's write, the spinner
	// must be silent: traffic at write time equals traffic right after the
	// initial fills (which complete well before cycle 5000).
	total := m.Net.TotalTraffic()
	if total <= trafficBeforeWrite {
		t.Fatalf("write generated no traffic (%d -> %d)", trafficBeforeWrite, total)
	}
	if trafficBeforeWrite == 0 {
		t.Fatal("initial fills generated no traffic")
	}
}

// TestDS0ReaderPingPong: with two spinning readers and no writer progress,
// DeNovoSync0's read registrations ping-pong between the readers (§4.2:
// "the synchronization data will ping-pong between the readers
// unnecessarily even while there is no intervening write"), so SYNCH
// traffic grows with waiting time. DeNovoSync's backoff damps this.
func TestDS0ReaderPingPong(t *testing.T) {
	run := func(prot Protocol) uint64 {
		space := alloc.New()
		flag := space.AllocPadded(space.Region("sync"))
		m := New(small16(), prot, space)
		_, err := m.Run("pingpong", func(th *cpu.Thread) {
			switch th.ID {
			case 0, 1:
				th.SpinSyncLoadUntil(flag, func(v uint64) bool { return v == 1 })
			case 2:
				th.Compute(20000)
				th.SyncStore(flag, 1)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return m.Net.Traffic()[proto.ClassSynch]
	}
	ds0 := run(DeNovoSync0)
	ds := run(DeNovoSync)
	if ds0 < 2000 {
		t.Fatalf("DS0 ping-pong traffic suspiciously low: %d", ds0)
	}
	if ds >= ds0/2 {
		t.Fatalf("backoff did not damp ping-pong: DS0=%d DS=%d", ds0, ds)
	}
}

// TestBackoffCounterDynamics exercises §4.2.1: incoming remote sync reads
// grow the backoff counter; a sync read hit resets it.
func TestBackoffCounterDynamics(t *testing.T) {
	space := alloc.New()
	flag := space.AllocPadded(space.Region("sync"))
	m := New(small16(), DeNovoSync, space)
	var peak, afterHit sim.Cycle
	_, err := m.Run("backoffctr", func(th *cpu.Thread) {
		l1 := func(id int) *denovo.L1 { return m.L1s[id].(*denovo.L1) }
		switch th.ID {
		case 0:
			_ = th.SyncLoad(flag) // register
			// Let core 1 steal registration a few times.
			for i := 0; i < 5; i++ {
				th.Compute(500)
			}
			th.Flush() // let core 1's steals play out before sampling
			peak = sim.Cycle(l1(0).BackoffCounter())
			// A sync read that ends in Registered state resets the counter.
			_ = th.SyncLoad(flag)
			_ = th.SyncLoad(flag) // now a genuine hit
			afterHit = sim.Cycle(l1(0).BackoffCounter())
		case 1:
			for i := 0; i < 4; i++ {
				th.Compute(400)
				_ = th.SyncLoad(flag) // steal registration from core 0... and back
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if peak == 0 {
		t.Fatal("backoff counter never grew despite remote sync reads")
	}
	if afterHit != 0 {
		t.Fatalf("sync read hit did not reset backoff counter: %d", afterHit)
	}
}

// TestIncrementCounterGrowsEveryN: §4.2.2 — every Nth incoming remote
// sync-read registration grows the increment counter; a release resets it.
func TestIncrementCounterGrowsEveryN(t *testing.T) {
	p := small16()
	p.IncEveryN = 4
	space := alloc.New()
	flag := space.AllocPadded(space.Region("sync"))
	m := New(p, DeNovoSync, space)
	var grown, afterRelease sim.Cycle
	_, err := m.Run("incctr", func(th *cpu.Thread) {
		l1 := func(id int) *denovo.L1 { return m.L1s[id].(*denovo.L1) }
		switch th.ID {
		case 0:
			_ = th.SyncLoad(flag)
			for i := 0; i < 9; i++ {
				th.Compute(300)
				_ = th.SyncLoad(flag) // re-register after each steal
			}
			grown = sim.Cycle(l1(0).IncrementCounter())
			th.SyncStore(flag, 7) // release resets the increment counter
			afterRelease = sim.Cycle(l1(0).IncrementCounter())
		case 1:
			for i := 0; i < 9; i++ {
				th.Compute(300)
				_ = th.SyncLoad(flag)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if grown <= sim.Cycle(p.DefaultIncrement) {
		t.Fatalf("increment counter did not grow: %d", grown)
	}
	if afterRelease != sim.Cycle(p.DefaultIncrement) {
		t.Fatalf("release did not reset increment counter: %d", afterRelease)
	}
}

// TestDeNovoOwnedWriteIsSilent: repeated writes to a word this core has
// registered generate no further traffic (registration persists across
// synchronization boundaries).
func TestDeNovoOwnedWriteIsSilent(t *testing.T) {
	space := alloc.New()
	w := space.AllocPadded(space.Region("sync"))
	m := New(small16(), DeNovoSync0, space)
	var after1, after100 uint64
	_, err := m.Run("ownedwrite", func(th *cpu.Thread) {
		if th.ID != 0 {
			return
		}
		th.SyncStore(w, 1)
		th.Fence()
		after1 = m.Net.TotalTraffic()
		for i := 0; i < 100; i++ {
			th.SyncStore(w, uint64(i))
		}
		after100 = m.Net.TotalTraffic()
	})
	if err != nil {
		t.Fatal(err)
	}
	if after100 != after1 {
		t.Fatalf("writes to a registered word generated traffic: %d -> %d", after1, after100)
	}
}

// TestMESIInvalidationFanout: invalidating N sharers costs ~N
// invalidation+ack message pairs — the linearization cost that grows with
// core count (§6.1.1). DeNovo has no invalidations at all.
func TestMESIInvalidationFanout(t *testing.T) {
	sharers := func(n int) uint64 {
		space := alloc.New()
		flag := space.AllocPadded(space.Region("sync"))
		gate := space.AllocPadded(space.Region("sync2"))
		m := New(small16(), MESI, space)
		_, err := m.Run("fanout", func(th *cpu.Thread) {
			if th.ID < n {
				_ = th.SyncLoad(flag) // become a sharer
				th.FetchAdd(gate, 1)
				th.SpinSyncLoadUntil(gate, func(v uint64) bool { return v >= uint64(n)+1 })
			} else if th.ID == 15 {
				th.SpinSyncLoadUntil(gate, func(v uint64) bool { return v == uint64(n) })
				th.SyncStore(flag, 1) // invalidate all n sharers
				th.FetchAdd(gate, 1)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return m.Net.Messages()[proto.ClassInv]
	}
	few := sharers(2)
	many := sharers(8)
	if many <= few {
		t.Fatalf("invalidation messages did not grow with sharers: 2->%d, 8->%d", few, many)
	}

	// DeNovo: zero invalidation-class messages ever.
	space := alloc.New()
	flag := space.AllocPadded(space.Region("sync"))
	m := New(small16(), DeNovoSync, space)
	_, err := m.Run("noinv", func(th *cpu.Thread) {
		_ = th.SyncLoad(flag)
		th.FetchAdd(flag, 1)
	})
	if err != nil {
		t.Fatal(err)
	}
	if inv := m.Net.Messages()[proto.ClassInv]; inv != 0 {
		t.Fatalf("DeNovo produced %d invalidation messages", inv)
	}
}

// TestDeNovoWordGranularityResponse: a DeNovo sync response carries one
// word (6 flits), not a full line (36 flits) — the traffic saving of §7.1.1
// ("per-word coherence granularity which allows sending only valid data").
func TestDeNovoWordGranularityResponse(t *testing.T) {
	space := alloc.New()
	w := space.AllocPadded(space.Region("sync"))
	m := New(small16(), DeNovoSync0, space)
	_, err := m.Run("wordgrain", func(th *cpu.Thread) {
		switch th.ID {
		case 0:
			th.SyncStore(w, 3) // register at core 0
			th.Compute(1000)
		case 1:
			th.Compute(500)
			_ = th.SyncLoad(w) // steal: fwd + single-word ack
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	synch := m.Net.Traffic()[proto.ClassSynch]
	// All SYNCH messages here are control (4 flits) or single-word (6
	// flits); with line-sized responses this would be several times higher.
	msgs := m.Net.Messages()[proto.ClassSynch]
	if msgs == 0 {
		t.Fatal("no SYNCH messages")
	}
	if synch > msgs*uint64(proto.WordDataFlits)*14 {
		t.Fatalf("SYNCH traffic %d too high for %d word-granularity messages", synch, msgs)
	}
}

// TestStoreBufferingLitmus: Dekker-style litmus — with sync accesses, both
// threads cannot read 0 (sequential consistency for synchronization, §4).
func TestStoreBufferingLitmus(t *testing.T) {
	for _, prot := range allProtocols {
		for trial := 0; trial < 5; trial++ {
			space := alloc.New()
			x := space.AllocPadded(space.Region("sync"))
			y := space.AllocPadded(space.Region("sync"))
			m := New(small16(), prot, space)
			var r0, r1 uint64
			var delays = []uint64{0, 10, 37, 100, 1}
			d := delays[trial]
			_, err := m.Run("sb", func(th *cpu.Thread) {
				switch th.ID {
				case 0:
					th.Compute(sim.Cycle(d))
					th.SyncStore(x, 1)
					r0 = th.SyncLoad(y)
				case 1:
					th.SyncStore(y, 1)
					r1 = th.SyncLoad(x)
				}
			})
			if err != nil {
				t.Fatal(err)
			}
			if r0 == 0 && r1 == 0 {
				t.Fatalf("%v trial %d: SC violation — both read 0", prot, trial)
			}
		}
	}
}
