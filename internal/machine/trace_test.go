package machine

import (
	"strings"
	"testing"

	"denovosync/internal/alloc"
	"denovosync/internal/cpu"
	"denovosync/internal/proto"
)

// TestMachineTrace: EnableTrace observes real protocol messages.
func TestMachineTrace(t *testing.T) {
	space := alloc.New()
	w := space.AllocPadded(space.Region("sync"))
	m := New(small16(), DeNovoSync, space)
	var sb strings.Builder
	tr := m.EnableTrace(&sb, proto.NumMsgClasses, 100)
	_, err := m.Run("traced", func(th *cpu.Thread) {
		if th.ID < 2 {
			th.FetchAdd(w, 1)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Count() == 0 {
		t.Fatal("no messages traced")
	}
	if !strings.Contains(sb.String(), "SYNCH") {
		t.Fatalf("expected SYNCH messages in trace:\n%s", sb.String())
	}
}
