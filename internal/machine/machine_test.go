package machine

import (
	"testing"

	"denovosync/internal/alloc"
	"denovosync/internal/cpu"
	"denovosync/internal/proto"
	"denovosync/internal/sim"
)

var allProtocols = []Protocol{MESI, DeNovoSync0, DeNovoSync}

func small16() Params {
	p := Params16()
	return p
}

// TestComputeOnly: a pure-compute workload finishes at exactly the compute
// length on every protocol.
func TestComputeOnly(t *testing.T) {
	for _, prot := range allProtocols {
		m := New(small16(), prot, alloc.New())
		rs, err := m.Run("compute", func(th *cpu.Thread) {
			th.Compute(1000)
		})
		if err != nil {
			t.Fatalf("%v: %v", prot, err)
		}
		if rs.ExecTime != 1000 {
			t.Errorf("%v: exec = %d, want 1000", prot, rs.ExecTime)
		}
		if rs.TotalTraffic != 0 {
			t.Errorf("%v: compute-only run produced traffic %d", prot, rs.TotalTraffic)
		}
	}
}

// TestPrivateData: each thread reads and writes its own line; values must
// round-trip, misses must be cold-only.
func TestPrivateData(t *testing.T) {
	for _, prot := range allProtocols {
		space := alloc.New()
		region := space.Region("priv")
		bases := make([]proto.Addr, 16)
		for i := range bases {
			bases[i] = space.AllocAligned(proto.WordsPerLine, region)
		}
		m := New(small16(), prot, space)
		rs, err := m.Run("private", func(th *cpu.Thread) {
			a := bases[th.ID]
			for w := 0; w < proto.WordsPerLine; w++ {
				th.Store(a+proto.Addr(w*proto.WordBytes), uint64(th.ID*100+w))
			}
			th.Fence()
			for w := 0; w < proto.WordsPerLine; w++ {
				if v := th.Load(a + proto.Addr(w*proto.WordBytes)); v != uint64(th.ID*100+w) {
					panic("value mismatch")
				}
			}
		})
		if err != nil {
			t.Fatalf("%v: %v", prot, err)
		}
		if rs.L1Misses == 0 {
			t.Errorf("%v: expected cold misses", prot)
		}
	}
}

// TestSharedCounter: all threads FetchAdd a shared counter; final value
// must equal the number of increments on every protocol.
func TestSharedCounter(t *testing.T) {
	const perThread = 20
	for _, prot := range allProtocols {
		space := alloc.New()
		ctr := space.AllocPadded(space.Region("sync"))
		m := New(small16(), prot, space)
		_, err := m.Run("counter", func(th *cpu.Thread) {
			for i := 0; i < perThread; i++ {
				th.FetchAdd(ctr, 1)
			}
		})
		if err != nil {
			t.Fatalf("%v: %v", prot, err)
		}
		if got := m.Store.Read(ctr); got != 16*perThread {
			t.Errorf("%v: counter = %d, want %d", prot, got, 16*perThread)
		}
	}
}

// TestMessagePassing: the classic DRF handoff — producer writes data then
// sets a sync flag; consumer spins on the flag, self-invalidates the data
// region, and must read the new data. Exercises write propagation and the
// acquire-side self-invalidation on DeNovo.
func TestMessagePassing(t *testing.T) {
	for _, prot := range allProtocols {
		space := alloc.New()
		dataRegion := space.Region("data")
		data := space.AllocAligned(4, dataRegion)
		flag := space.AllocPadded(space.Region("sync"))
		m := New(small16(), prot, space)
		var got uint64
		_, err := m.Run("mp", func(th *cpu.Thread) {
			switch th.ID {
			case 0:
				// Consumer first reads data (caching a stale copy), then
				// waits for the flag.
				_ = th.Load(data)
				th.SpinSyncLoadUntil(flag, func(v uint64) bool { return v == 1 })
				th.SelfInvalidate(proto.NewRegionSet(dataRegion))
				got = th.Load(data)
			case 1:
				th.Compute(200)
				th.Store(data, 42)
				th.SyncStore(flag, 1)
			}
		})
		if err != nil {
			t.Fatalf("%v: %v", prot, err)
		}
		if got != 42 {
			t.Errorf("%v: consumer read %d, want 42", prot, got)
		}
	}
}

// TestStaleValidReadWithoutSelfInvalidation documents DeNovo semantics: a
// cached Valid word is NOT invalidated by a remote write, so without the
// self-invalidation the consumer may legally read the stale value. (On
// MESI the invalidation makes the new value visible.)
func TestStaleValidReadWithoutSelfInvalidation(t *testing.T) {
	space := alloc.New()
	data := space.AllocAligned(1, space.Region("data"))
	flag := space.AllocPadded(space.Region("sync"))
	m := New(small16(), DeNovoSync0, space)
	var got uint64
	_, err := m.Run("stale", func(th *cpu.Thread) {
		switch th.ID {
		case 0:
			_ = th.Load(data) // cache a Valid copy of 0
			th.SpinSyncLoadUntil(flag, func(v uint64) bool { return v == 1 })
			got = th.Load(data) // no self-invalidation: stale hit allowed
		case 1:
			th.Compute(200)
			th.Store(data, 42)
			th.SyncStore(flag, 1)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Fatalf("expected stale read of 0 (reader-initiated invalidation), got %d", got)
	}
}

// TestDeterminism: identical runs produce identical statistics.
func TestDeterminism(t *testing.T) {
	run := func() (sim.Cycle, uint64) {
		space := alloc.New()
		ctr := space.AllocPadded(space.Region("sync"))
		m := New(small16(), DeNovoSync, space)
		rs, err := m.Run("det", func(th *cpu.Thread) {
			for i := 0; i < 10; i++ {
				th.FetchAdd(ctr, 1)
				th.Compute(sim.Cycle(th.RNG.Range(10, 50)))
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return rs.ExecTime, rs.TotalTraffic
	}
	e1, t1 := run()
	e2, t2 := run()
	if e1 != e2 || t1 != t2 {
		t.Fatalf("nondeterministic: (%d,%d) vs (%d,%d)", e1, t1, e2, t2)
	}
}

// TestMESIInvariants: after a quiesced run, the directory never shows an
// owner together with sharers.
func TestMESIInvariants(t *testing.T) {
	space := alloc.New()
	region := space.Region("shared")
	words := make([]proto.Addr, 8)
	for i := range words {
		words[i] = space.AllocPadded(region)
	}
	m := New(small16(), MESI, space)
	_, err := m.Run("inv", func(th *cpu.Thread) {
		for i := 0; i < 20; i++ {
			w := words[(th.ID+i)%len(words)]
			if i%3 == 0 {
				th.FetchAdd(w, 1)
			} else {
				_ = th.SyncLoad(w)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range words {
		state, owner, sharers, busy := m.MESIDir.StateOf(w.Line())
		if busy {
			t.Errorf("line %v busy after quiesce", w)
		}
		if state == 2 && sharers > 0 && owner >= 0 {
			// state dm with sharers is only legal transiently
			t.Errorf("line %v: owner %d with %d sharers", w, owner, sharers)
		}
	}
}

// TestDeNovoSingleRegistrant: after a quiesced run every word has at most
// one registrant, and that L1 really holds the word Registered or the
// registry owns it.
func TestDeNovoSingleRegistrant(t *testing.T) {
	space := alloc.New()
	w := space.AllocPadded(space.Region("sync"))
	m := New(small16(), DeNovoSync0, space)
	_, err := m.Run("singlereg", func(th *cpu.Thread) {
		for i := 0; i < 10; i++ {
			th.FetchAdd(w, 1)
			_ = th.SyncLoad(w)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	owner := m.Registry.OwnerOf(w)
	if owner < -1 || owner >= 16 {
		t.Fatalf("bogus owner %d", owner)
	}
}

// TestRunTwicePanics: machines are single-use.
func TestRunTwicePanics(t *testing.T) {
	m := New(small16(), MESI, alloc.New())
	if _, err := m.Run("a", func(th *cpu.Thread) {}); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("second Run did not panic")
		}
	}()
	_, _ = m.Run("b", func(th *cpu.Thread) {})
}

// TestHeterogeneousThreads: RunThreads gives each thread its own body.
func TestHeterogeneousThreads(t *testing.T) {
	space := alloc.New()
	sum := space.AllocPadded(space.Region("sync"))
	m := New(small16(), DeNovoSync, space)
	_, err := m.RunThreads("hetero", func(i int) Workload {
		if i == 0 {
			return func(th *cpu.Thread) { th.FetchAdd(sum, 100) }
		}
		return func(th *cpu.Thread) { th.FetchAdd(sum, 1) }
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Store.Read(sum); got != 115 {
		t.Fatalf("sum = %d, want 115", got)
	}
}
