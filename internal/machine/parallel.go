// Parallel execution: the machine's bridge to the conservative window
// scheduler in internal/pdes. The wiring (per-LP engines, the mailbox
// exchange, per-node engine resolution in every controller) happens in
// New; this file only drives the run and replicates the watchdog at
// window barriers.
package machine

import (
	"denovosync/internal/pdes"
)

// runParallel executes the partitioned machine to completion. The window
// width (lookahead) is the one-hop network latency: the minimum time any
// cross-LP message spends in flight, since nodes of different LPs never
// share a router.
func (m *Machine) runParallel(eventLimit uint64) error {
	sched := &pdes.Scheduler{
		Engines:    m.engines,
		Exchange:   m.exch,
		Lookahead:  m.Net.Latency(1),
		EventLimit: eventLimit,
	}
	if wd := m.Params.WatchdogCycles; wd > 0 {
		// The serial watchdog is a recurring engine event (armWatchdog);
		// here the coordinator runs the same progress check at each
		// tick-aligned barrier, where the machine state is exactly what
		// the serial tick event would observe.
		m.Net.TrackInFlight()
		last := ^uint64(0) // first tick always observes progress (startup)
		sched.TickPeriod = wd
		sched.OnTick = func() bool {
			if m.finishedCount() == m.Params.Cores {
				return false
			}
			cur := m.totalRetired()
			if cur == last {
				m.watchdogErr = &WatchdogError{Budget: uint64(wd), Snapshot: m.snapshot()}
				return true
			}
			last = cur
			return false
		}
	}
	m.sched = sched
	return sched.Run()
}
