// Package machine assembles a full simulated system — cores, L1s, the
// shared L2 (MESI directory or DeNovo registry), mesh network, and memory
// controllers — and runs workloads on it.
package machine

import (
	"fmt"
	"io"
	"time"

	"denovosync/internal/alloc"
	"denovosync/internal/cpu"
	"denovosync/internal/denovo"
	"denovosync/internal/mem"
	"denovosync/internal/mesi"
	"denovosync/internal/noc"
	"denovosync/internal/pdes"
	"denovosync/internal/proto"
	"denovosync/internal/sim"
	"denovosync/internal/stats"
	"denovosync/internal/trace"
)

// Protocol selects the coherence protocol under evaluation.
type Protocol int

const (
	MESI Protocol = iota
	DeNovoSync0
	DeNovoSync
)

func (p Protocol) String() string {
	switch p {
	case MESI:
		return "MESI"
	case DeNovoSync0:
		return "DeNovoSync0"
	case DeNovoSync:
		return "DeNovoSync"
	}
	return fmt.Sprintf("Protocol(%d)", int(p))
}

// Short returns the figure-label abbreviation (M / DS0 / DS).
func (p Protocol) Short() string {
	switch p {
	case MESI:
		return "M"
	case DeNovoSync0:
		return "DS0"
	case DeNovoSync:
		return "DS"
	}
	return "?"
}

// Params captures Table 1 of the paper plus the backoff configuration of
// §5.2.
type Params struct {
	Cores        int
	MeshW, MeshH int

	L1Size, L1Ways int

	// Network: per-hop latency as a rational (cycles).
	PerHopNum, PerHopDen sim.Cycle

	// Latency components fitted to Table 1: L1 access 1, L2 access 27,
	// remote-L1 access 9, DRAM 169 (so local L2 hit = 28, local remote-L1
	// hit = 37, local memory hit = 197; distance adds per-hop cycles up to
	// the table's maxima).
	L1AccessLat, L2AccessLat, RemoteL1Lat, DRAMLat sim.Cycle

	// DeNovoSync hardware backoff (§5.2): 9-bit counter with 1-cycle
	// default increment at 16 cores; 12-bit with 64-cycle at 64 cores.
	BackoffBits      uint
	DefaultIncrement sim.Cycle
	IncEveryN        int

	// Signatures enables the DeNovoND-style hardware write-signature
	// extension on DeNovo machines (dynamic self-invalidation).
	Signatures bool

	// LinkContention switches the mesh from the analytic latency model to
	// the wormhole approximation with per-link serialization.
	LinkContention bool

	// LineGranularity switches DeNovo machines from the paper's
	// word-granularity coherence state to line granularity — the ablation
	// behind §2.2's false-sharing claim.
	LineGranularity bool

	// Seed drives all workload randomness (deterministic).
	Seed uint64

	// WatchdogCycles arms the deadlock/livelock watchdog: if no core
	// retires an operation for this many cycles, the run aborts with a
	// structured diagnostic snapshot (*WatchdogError) instead of spinning
	// to the event limit. 0 disables.
	WatchdogCycles sim.Cycle

	// LPs partitions the machine into that many logical processes run in
	// parallel under the conservative window scheduler (internal/pdes).
	// 0 or 1 is the serial machine. Results are bit-identical across all
	// values (the pdes differential battery enforces it); LinkContention
	// and message tracing are serial-only and refuse LPs > 1.
	LPs int
}

// lps returns the effective logical-process count.
func (p Params) lps() int {
	if p.LPs < 1 {
		return 1
	}
	return p.LPs
}

// Params16 returns the 16-core configuration of Table 1.
func Params16() Params {
	return Params{
		Cores: 16, MeshW: 4, MeshH: 4,
		L1Size: 32 * 1024, L1Ways: 8,
		PerHopNum: 10, PerHopDen: 3,
		L1AccessLat: 1, L2AccessLat: 27, RemoteL1Lat: 9, DRAMLat: 169,
		BackoffBits: 9, DefaultIncrement: 1, IncEveryN: 16,
		Seed: 1,
	}
}

// Params64 returns the 64-core configuration of Table 1.
func Params64() Params {
	return Params{
		Cores: 64, MeshW: 8, MeshH: 8,
		L1Size: 32 * 1024, L1Ways: 8,
		PerHopNum: 4, PerHopDen: 1,
		L1AccessLat: 1, L2AccessLat: 27, RemoteL1Lat: 9, DRAMLat: 169,
		BackoffBits: 12, DefaultIncrement: 64, IncEveryN: 64,
		Seed: 1,
	}
}

// Machine is one assembled system ready to run a workload.
type Machine struct {
	Params   Params
	Protocol Protocol

	Eng   *sim.Engine
	Net   *noc.Network
	Store *mem.Store
	DRAM  *mem.DRAM
	Space *alloc.Space

	L1s   []proto.L1Controller
	Cores []*cpu.Core

	// test hooks
	MESIDir  *mesi.Directory
	Registry *denovo.Registry

	// Parallel-mode state (nil/zero on serial machines): the partition,
	// one engine per LP (engines[0] == Eng), the mailbox exchange wired
	// into the network, and the window scheduler.
	part    pdes.Partition
	engines []*sim.Engine
	exch    *pdes.Exchange
	sched   *pdes.Scheduler

	rng         *sim.RNG
	watchdogErr *WatchdogError
}

// Parallel reports whether the machine runs partitioned (LPs > 1).
func (m *Machine) Parallel() bool { return m.engines != nil }

// engFor returns the engine driving node's events.
func (m *Machine) engFor(node proto.NodeID) *sim.Engine {
	if m.engines == nil {
		return m.Eng
	}
	return m.engines[m.part.LPOf(node)]
}

// simNow returns the latest cycle any engine has reached.
func (m *Machine) simNow() sim.Cycle {
	if m.engines == nil {
		return m.Eng.Now()
	}
	var t sim.Cycle
	for _, e := range m.engines {
		if n := e.Now(); n > t {
			t = n
		}
	}
	return t
}

// totalEvents returns events dispatched across all engines, including
// replicated watchdog ticks (serial ticks are real engine events; the
// parallel coordinator runs them at barriers and counts them here).
func (m *Machine) totalEvents() uint64 {
	if m.engines == nil {
		return m.Eng.Executed
	}
	var t uint64
	for _, e := range m.engines {
		t += e.Executed
	}
	if m.sched != nil {
		t += m.sched.Ticks
	}
	return t
}

// pendingEvents returns queued events across all engines.
func (m *Machine) pendingEvents() int {
	if m.engines == nil {
		return m.Eng.Pending()
	}
	n := 0
	for _, e := range m.engines {
		n += e.Pending()
	}
	return n
}

// finishedCount polls how many cores have retired their thread's final
// operation. The machine deliberately keeps no "finished" counter of its
// own: a shared counter bumped from every core's service loop is exactly
// the cross-tile mutation the isolation prover forbids, while polling
// each core's own flag is a read-only sweep any PDES coordinator can do.
func (m *Machine) finishedCount() int {
	n := 0
	for _, core := range m.Cores {
		if core.Finished() {
			n++
		}
	}
	return n
}

// New assembles a machine. space provides the region map (it may already
// contain workload allocations; threads may also allocate during the run).
func New(p Params, prot Protocol, space *alloc.Space) *Machine {
	if p.Cores != p.MeshW*p.MeshH {
		panic("machine: core count does not match mesh")
	}
	lps := p.lps()
	if lps > 1 && p.LinkContention {
		panic("machine: link contention is serial-only (set LPs <= 1)")
	}
	mesh := noc.Mesh{W: p.MeshW, H: p.MeshH}

	// Engines first: every component resolves its driving engine at
	// wiring time. Serial machines get one; partitioned machines one per
	// logical process, with engines[0] doubling as the nominal m.Eng.
	var part pdes.Partition
	var engines []*sim.Engine
	eng := sim.NewEngine()
	if lps > 1 {
		var err error
		part, err = pdes.NewPartition(mesh, lps)
		if err != nil {
			panic(err)
		}
		engines = make([]*sim.Engine, lps)
		engines[0] = eng
		for i := 1; i < lps; i++ {
			engines[i] = sim.NewEngine()
		}
	}
	engAt := func(node proto.NodeID) *sim.Engine {
		if engines == nil {
			return eng
		}
		return engines[part.LPOf(node)]
	}

	net := noc.New(eng, mesh, p.PerHopNum, p.PerHopDen)
	if p.LinkContention {
		net.EnableContention(1)
	}
	store := mem.NewStore()
	dram := mem.NewDRAM(eng, net, p.DRAMLat)
	var exch *pdes.Exchange
	if lps > 1 {
		nodeEngines := make([]*sim.Engine, mesh.Tiles()+noc.NumMemCtrl)
		for i := range nodeEngines {
			nodeEngines[i] = engAt(proto.NodeID(i))
		}
		net.SetEngines(nodeEngines)
		exch = pdes.NewExchange(part, engines)
		net.SetExchange(exch)
		store.Share()
		var mcEngines [noc.NumMemCtrl]*sim.Engine
		for k := 0; k < noc.NumMemCtrl; k++ {
			mcEngines[k] = engAt(mesh.MemNode(k))
		}
		dram.SetEngines(mcEngines)
	}

	m := &Machine{
		Params: p, Protocol: prot,
		Eng: eng, Net: net, Store: store, DRAM: dram, Space: space,
		part: part, engines: engines, exch: exch,
		rng: sim.NewRNG(p.Seed),
	}

	switch prot {
	case MESI:
		cfg := &mesi.Config{
			Eng: eng, Net: net, Store: store, DRAM: dram, EngAt: engAtOrNil(engines, engAt),
			L1Size: p.L1Size, L1Ways: p.L1Ways,
			L1AccessLat: p.L1AccessLat, L2AccessLat: p.L2AccessLat, RemoteL1Lat: p.RemoteL1Lat,
		}
		dir := mesi.NewDirectory(cfg, p.Cores)
		m.MESIDir = dir
		for i := 0; i < p.Cores; i++ {
			l1 := mesi.NewL1(cfg, proto.CoreID(i), proto.NodeID(i))
			l1.SetDirectory(dir)
			m.L1s = append(m.L1s, l1)
		}
	case DeNovoSync0, DeNovoSync:
		cfg := &denovo.Config{
			Eng: eng, Net: net, Store: store, DRAM: dram, EngAt: engAtOrNil(engines, engAt),
			L1Size: p.L1Size, L1Ways: p.L1Ways,
			L1AccessLat: p.L1AccessLat, L2AccessLat: p.L2AccessLat, RemoteL1Lat: p.RemoteL1Lat,
			Backoff:     prot == DeNovoSync,
			BackoffBits: p.BackoffBits, DefaultIncrement: p.DefaultIncrement, IncEveryN: p.IncEveryN,
		}
		if p.Signatures {
			cfg.Signatures = mem.NewSigTable(p.Cores)
		}
		if p.LineGranularity {
			cfg.UnitWords = proto.WordsPerLine
		}
		reg := denovo.NewRegistry(cfg, p.Cores)
		m.Registry = reg
		var l1s []*denovo.L1
		for i := 0; i < p.Cores; i++ {
			l1 := denovo.NewL1(cfg, proto.CoreID(i), proto.NodeID(i), space)
			l1.SetRegistry(reg)
			l1s = append(l1s, l1)
			m.L1s = append(m.L1s, l1)
		}
		reg.SetL1s(l1s)
	default:
		panic("machine: unknown protocol")
	}
	return m
}

// engAtOrNil passes the resolver through only for partitioned machines,
// so serial configs keep the nil fast path.
func engAtOrNil(engines []*sim.Engine, engAt func(proto.NodeID) *sim.Engine) func(proto.NodeID) *sim.Engine {
	if engines == nil {
		return nil
	}
	return engAt
}

// EnableTrace logs every network message to w (one line per message:
// cycle, class, route, flits). class = proto.NumMsgClasses traces all
// classes; limit > 0 caps the number of logged events.
func (m *Machine) EnableTrace(w io.Writer, class proto.MsgClass, limit int) *trace.Tracer {
	if m.Parallel() {
		panic("machine: message tracing is serial-only (set LPs <= 1)")
	}
	tr := trace.New(w, class, limit)
	m.Net.SetTrace(tr.Message)
	return tr
}

// Workload is the per-thread body; it runs once per core.
type Workload func(t *cpu.Thread)

// Run executes the workload with one thread per core, to completion.
// It returns aggregate statistics, or an error if the system deadlocked
// (threads blocked with no events pending) or exceeded the event limit.
func (m *Machine) Run(name string, w Workload) (*stats.RunStats, error) {
	return m.RunThreads(name, func(i int) Workload { return w })
}

// RunThreads runs a possibly heterogeneous workload: body(i) supplies the
// function for thread i.
func (m *Machine) RunThreads(name string, body func(i int) Workload) (*stats.RunStats, error) {
	if m.Cores != nil {
		panic("machine: Run called twice")
	}
	for i := 0; i < m.Params.Cores; i++ {
		core := cpu.NewCore(m.engFor(proto.NodeID(i)), proto.CoreID(i), m.L1s[i], nil)
		m.Cores = append(m.Cores, core)
		core.Start()
	}
	// Thread RNG forks happen here, host-serially in core order, so the
	// per-thread streams are identical in every partitioning.
	for i, core := range m.Cores {
		th := cpu.NewThread(core, m.Space, m.rng.Fork())
		fn := body(i)
		go func() {
			defer th.Close()
			th.Rendezvous()
			fn(th)
		}()
	}
	const eventLimit = 4_000_000_000
	wallStart := time.Now()
	var runErr error
	if m.Parallel() {
		runErr = m.runParallel(eventLimit)
	} else {
		if m.Params.WatchdogCycles > 0 {
			m.armWatchdog()
		}
		m.Eng.Run(eventLimit)
	}
	wall := time.Since(wallStart)

	if m.watchdogErr != nil {
		return nil, m.watchdogErr
	}
	if runErr != nil {
		return nil, runErr
	}
	if finished := m.finishedCount(); finished != m.Params.Cores {
		return nil, fmt.Errorf("machine: deadlock or livelock: %d/%d threads finished after %d events",
			finished, m.Params.Cores, m.totalEvents())
	}

	rs := &stats.RunStats{
		Protocol: m.Protocol.String(),
		Workload: name,
		Cores:    m.Params.Cores,
		Traffic:  m.Net.Traffic(),
		Events:   m.totalEvents(),
	}
	for _, core := range m.Cores {
		rs.PerCore = append(rs.PerCore, core.Time())
		s := core.L1().Stats()
		rs.L1Hits += s.TotalHits()
		rs.L1Misses += s.TotalMisses()
	}
	rs.Aggregate()
	rs.SetWallTime(wall)

	// Every run doubles as a protocol invariant test: validate the
	// stable-state invariants at quiescence.
	if err := m.CheckInvariants(); err != nil {
		return nil, err
	}
	return rs, nil
}

// CheckInvariants validates the protocol's stable-state invariants across
// all caches and the shared L2 (single owner/registrant, directory and
// registry agreement, value coherence). Run calls it automatically after
// every simulation.
func (m *Machine) CheckInvariants() error {
	switch m.Protocol {
	case MESI:
		var l1s []*mesi.L1
		for _, c := range m.L1s {
			l1s = append(l1s, c.(*mesi.L1))
		}
		return m.MESIDir.Validate(l1s)
	default:
		var l1s []*denovo.L1
		for _, c := range m.L1s {
			l1s = append(l1s, c.(*denovo.L1))
		}
		return m.Registry.Validate(l1s)
	}
}
