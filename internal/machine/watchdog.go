// Deadlock/livelock watchdog: when Params.WatchdogCycles > 0, the machine
// monitors global retirement progress and converts a hang — no core
// retiring any operation for a full cycle budget — into a structured
// diagnostic snapshot instead of spinning to the event limit.
package machine

import (
	"encoding/json"
	"fmt"

	"denovosync/internal/denovo"
	"denovosync/internal/mesi"
	"denovosync/internal/proto"
)

// WatchdogCore is one core's state in a diagnostic snapshot.
type WatchdogCore struct {
	Core     int    `json:"core"`
	Finished bool   `json:"finished"`
	Phase    string `json:"phase"`
	Retired  uint64 `json:"retired"`

	// Outstanding lists the MSHR contents: lines (MESI) or coherence
	// units (DeNovo) with an in-flight transaction.
	Outstanding []string `json:"outstanding,omitempty"`

	// Parked lists, per outstanding word, the cores whose forwarded
	// registrations wait in this MSHR (DeNovo's distributed registration
	// queue) as "word<-[cores]".
	Parked []string `json:"parked,omitempty"`

	PendingStores int `json:"pending_stores,omitempty"`

	// DeNovoSync hardware-backoff state (§4.2).
	BackoffCounter   uint64 `json:"backoff_counter,omitempty"`
	BackoffIncrement uint64 `json:"backoff_increment,omitempty"`
	BackoffStall     uint64 `json:"backoff_stall_cycles,omitempty"`
}

// WatchdogSnapshot is the structured diagnostic emitted when the watchdog
// fires: enough system state to see who is stuck on what.
type WatchdogSnapshot struct {
	Protocol      string `json:"protocol"`
	Cycle         uint64 `json:"cycle"`
	Events        uint64 `json:"events"`
	PendingEvents int    `json:"pending_events"`
	Finished      int    `json:"finished_threads"`
	Cores         int    `json:"cores"`

	// InFlight counts sent-but-undelivered NoC messages per class.
	InFlight map[string]int64 `json:"in_flight_messages,omitempty"`

	PerCore []WatchdogCore `json:"per_core"`

	// BusyDirLines: MESI directory lines blocked mid-transaction.
	BusyDirLines []string `json:"busy_dir_lines,omitempty"`
	// FetchingRegLines: DeNovo registry lines mid cold-fetch.
	FetchingRegLines []string `json:"fetching_reg_lines,omitempty"`
}

// WatchdogError reports that no core retired an operation for a full
// watchdog budget. It wraps the diagnostic snapshot; use errors.As to
// recover it programmatically.
type WatchdogError struct {
	Budget   uint64 // configured cycle budget
	Snapshot WatchdogSnapshot
}

func (e *WatchdogError) Error() string {
	b, err := json.MarshalIndent(&e.Snapshot, "", "  ")
	if err != nil {
		b = []byte(fmt.Sprintf("unrenderable snapshot: %v", err))
	}
	return fmt.Sprintf("machine: watchdog: no core retired an operation for %d cycles (cycle %d, %d/%d threads finished); diagnostic snapshot:\n%s",
		e.Budget, e.Snapshot.Cycle, e.Snapshot.Finished, e.Snapshot.Cores, b)
}

// armWatchdog schedules the recurring progress check. It fires when total
// retirements did not advance over a full budget; it stops rescheduling
// (letting the event queue drain) once every thread finished.
func (m *Machine) armWatchdog() {
	m.Net.TrackInFlight()
	budget := m.Params.WatchdogCycles
	last := ^uint64(0) // first tick always observes progress (startup)
	var tick func()
	tick = func() {
		if m.finishedCount() == m.Params.Cores {
			return
		}
		cur := m.totalRetired()
		if cur == last {
			m.watchdogErr = &WatchdogError{Budget: uint64(budget), Snapshot: m.snapshot()}
			m.Eng.Stop()
			return
		}
		last = cur
		m.Eng.Schedule(budget, tick)
	}
	m.Eng.Schedule(budget, tick)
}

func (m *Machine) totalRetired() uint64 {
	var t uint64
	for _, c := range m.Cores {
		t += c.Retired()
	}
	return t
}

// snapshot captures the diagnostic state at the moment the watchdog fires.
func (m *Machine) snapshot() WatchdogSnapshot {
	s := WatchdogSnapshot{
		Protocol:      m.Protocol.String(),
		Cycle:         uint64(m.simNow()),
		Events:        m.totalEvents(),
		PendingEvents: m.pendingEvents(),
		Finished:      m.finishedCount(),
		Cores:         m.Params.Cores,
	}
	inflight := m.Net.InFlight()
	for cl := proto.MsgClass(0); cl < proto.NumMsgClasses; cl++ {
		if inflight[cl] != 0 {
			if s.InFlight == nil {
				s.InFlight = map[string]int64{}
			}
			s.InFlight[cl.String()] = inflight[cl]
		}
	}
	for i, core := range m.Cores {
		wc := WatchdogCore{
			Core:     i,
			Finished: core.Finished(),
			Phase:    core.Phase().String(),
			Retired:  core.Retired(),
		}
		switch l1 := m.L1s[i].(type) {
		case *mesi.L1:
			for _, line := range l1.OutstandingLines() {
				wc.Outstanding = append(wc.Outstanding, fmt.Sprintf("%v", line))
			}
			wc.PendingStores = l1.PendingStoreCount()
		case *denovo.L1:
			for _, word := range l1.OutstandingWords() {
				wc.Outstanding = append(wc.Outstanding, fmt.Sprintf("%v", word))
				if parked := l1.ParkedRequesters(word); len(parked) > 0 {
					wc.Parked = append(wc.Parked, fmt.Sprintf("%v<-%v", word, parked))
				}
			}
			wc.PendingStores = l1.PendingStoreCount()
			wc.BackoffCounter = uint64(l1.BackoffCounter())
			wc.BackoffIncrement = uint64(l1.IncrementCounter())
			wc.BackoffStall = uint64(l1.BackoffStallCycles())
		}
		s.PerCore = append(s.PerCore, wc)
	}
	if m.MESIDir != nil {
		for _, line := range m.MESIDir.BusyLines() {
			s.BusyDirLines = append(s.BusyDirLines, fmt.Sprintf("%v", line))
		}
	}
	if m.Registry != nil {
		for _, line := range m.Registry.FetchingLines() {
			s.FetchingRegLines = append(s.FetchingRegLines, fmt.Sprintf("%v", line))
		}
	}
	return s
}
