package machine_test

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"denovosync/internal/alloc"
	"denovosync/internal/kernels"
	"denovosync/internal/machine"
	"denovosync/internal/stats"
)

var updateGolden = flag.Bool("update", false, "rewrite golden testdata files")

// detJobs is the replay matrix: three kernels with different
// synchronization shapes (TATAS lock, non-blocking CAS loop, barrier) on
// every protocol, at a reduced iteration count.
func detJobs() []struct {
	kernel string
	prot   machine.Protocol
} {
	var jobs []struct {
		kernel string
		prot   machine.Protocol
	}
	for _, k := range []string{"tatas-counter", "nb-m-s-queue", "bar-tree"} {
		for _, p := range []machine.Protocol{machine.MESI, machine.DeNovoSync0, machine.DeNovoSync} {
			jobs = append(jobs, struct {
				kernel string
				prot   machine.Protocol
			}{k, p})
		}
	}
	return jobs
}

func runDetJob(t *testing.T, kernel string, prot machine.Protocol, seed uint64) *stats.RunStats {
	t.Helper()
	k, ok := kernels.ByID(kernel)
	if !ok {
		t.Fatalf("unknown kernel %s", kernel)
	}
	p := machine.Params16()
	p.Seed = seed
	m := machine.New(p, prot, alloc.New())
	rs, err := kernels.Run(k, m, kernels.Config{Iters: 10, EqChecks: -1})
	if err != nil {
		t.Fatalf("%s/%v: %v", kernel, prot, err)
	}
	return rs
}

// fingerprint renders a run's simulated quantities canonically (see
// stats.Fingerprint — shared with the pdes differential battery).
func fingerprint(rs *stats.RunStats) string { return stats.Fingerprint(rs) }

// TestDeterminismReplay: the same Params.Seed must yield bitwise-identical
// statistics on a fresh machine.
func TestDeterminismReplay(t *testing.T) {
	for _, j := range detJobs() {
		a := fingerprint(runDetJob(t, j.kernel, j.prot, 7))
		b := fingerprint(runDetJob(t, j.kernel, j.prot, 7))
		if a != b {
			t.Fatalf("%s/%v: same seed diverged:\n%s\n%s", j.kernel, j.prot, a, b)
		}
	}
}

// TestDeterminismSeedMatters: a different seed changes the workload's
// random dummy computation and therefore the makespan.
func TestDeterminismSeedMatters(t *testing.T) {
	a := runDetJob(t, "tatas-counter", machine.DeNovoSync, 7)
	b := runDetJob(t, "tatas-counter", machine.DeNovoSync, 8)
	if a.ExecTime == b.ExecTime && fingerprint(a) == fingerprint(b) {
		t.Fatal("different seeds produced identical runs")
	}
}

// TestDeterminismParallelHarness: running the matrix GOMAXPROCS-parallel
// (independent machines on concurrent goroutines, as the harness does)
// must match the serial fingerprints exactly. Under -race this also
// checks machines share no mutable state.
func TestDeterminismParallelHarness(t *testing.T) {
	jobs := detJobs()
	serial := make([]string, len(jobs))
	for i, j := range jobs {
		serial[i] = fingerprint(runDetJob(t, j.kernel, j.prot, 7))
	}
	parallel := make([]string, len(jobs))
	var wg sync.WaitGroup
	for i, j := range jobs {
		i, j := i, j
		wg.Add(1)
		go func() {
			defer wg.Done()
			parallel[i] = fingerprint(runDetJob(t, j.kernel, j.prot, 7))
		}()
	}
	wg.Wait()
	for i := range jobs {
		if serial[i] != parallel[i] {
			t.Fatalf("%s/%v: parallel run diverged from serial:\n%s\n%s",
				jobs[i].kernel, jobs[i].prot, serial[i], parallel[i])
		}
	}
}

// TestDeterminismGolden pins the fingerprints against checked-in golden
// values, so engine rewrites (event pool, handshake batching) cannot
// silently change simulated results between commits.
func TestDeterminismGolden(t *testing.T) {
	var b strings.Builder
	for _, j := range detJobs() {
		fmt.Fprintf(&b, "%s\n", fingerprint(runDetJob(t, j.kernel, j.prot, 7)))
	}
	path := filepath.Join("testdata", "determinism_golden.txt")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update to create): %v", err)
	}
	if b.String() != string(want) {
		gl := strings.Split(b.String(), "\n")
		wl := strings.Split(string(want), "\n")
		for i := 0; i < len(gl) && i < len(wl); i++ {
			if gl[i] != wl[i] {
				t.Fatalf("fingerprint %d diverged from golden:\nwant: %s\ngot:  %s", i, wl[i], gl[i])
			}
		}
		t.Fatalf("fingerprint count diverged: want %d, got %d", len(wl), len(gl))
	}
}
