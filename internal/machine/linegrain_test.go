package machine

import (
	"testing"

	"denovosync/internal/alloc"
	"denovosync/internal/cpu"
	"denovosync/internal/proto"
)

// lineParams returns a 16-core DeNovo configuration at line granularity.
func lineParams() Params {
	p := Params16()
	p.LineGranularity = true
	return p
}

// TestLineGranularityFunctional: the full correctness battery (counter,
// message passing, self-invalidation) holds at line granularity.
func TestLineGranularityFunctional(t *testing.T) {
	for _, prot := range []Protocol{DeNovoSync0, DeNovoSync} {
		space := alloc.New()
		ctr := space.AllocPadded(space.Region("sync"))
		dataRegion := space.Region("data")
		data := space.AllocAligned(4, dataRegion)
		flag := space.AllocPadded(space.Region("flag"))
		m := New(lineParams(), prot, space)
		var got uint64
		_, err := m.Run("linegrain", func(th *cpu.Thread) {
			for i := 0; i < 10; i++ {
				th.FetchAdd(ctr, 1)
			}
			switch th.ID {
			case 0:
				_ = th.Load(data) // stale copy
				th.SpinSyncLoadUntil(flag, func(v uint64) bool { return v == 1 })
				th.SelfInvalidate(proto.NewRegionSet(dataRegion))
				got = th.Load(data)
			case 1:
				th.Compute(500)
				th.Store(data, 99)
				th.SyncStore(flag, 1)
			}
		})
		if err != nil {
			t.Fatalf("%v: %v", prot, err)
		}
		if v := m.Store.Read(ctr); v != 160 {
			t.Fatalf("%v: counter = %d", prot, v)
		}
		if got != 99 {
			t.Fatalf("%v: consumer read %d", prot, got)
		}
	}
}

// TestLineGranularityEvictions: the eviction/writeback machinery stays
// correct when whole units change hands.
func TestLineGranularityEvictions(t *testing.T) {
	p := lineParams()
	p.L1Size = 512
	p.L1Ways = 2
	space := alloc.New()
	hot := space.AllocPadded(space.Region("sync"))
	big := space.AllocAligned(256, space.Region("big"))
	m := New(p, DeNovoSync0, space)
	_, err := m.Run("linegrain-evict", func(th *cpu.Thread) {
		for i := 0; i < 15; i++ {
			th.FetchAdd(hot, 1)
			for k := 0; k < 32; k++ {
				th.Store(big+proto.Addr(((i*32+k)%256)*proto.WordBytes), uint64(k))
			}
			th.Fence()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if v := m.Store.Read(hot); v != 240 {
		t.Fatalf("counter = %d", v)
	}
}

// TestLineGranularityFalseSharing: two cores writing different words of
// the same line ping-pong ownership at line granularity but not at word
// granularity — the §2.2 claim, quantified.
func TestLineGranularityFalseSharing(t *testing.T) {
	run := func(line bool) uint64 {
		p := Params16()
		p.LineGranularity = line
		space := alloc.New()
		shared := space.AllocAligned(proto.WordsPerLine, space.Region("fs"))
		m := New(p, DeNovoSync0, space)
		_, err := m.Run("falseshare", func(th *cpu.Thread) {
			// Contenders on distant tiles (the line's home bank is tile 0;
			// 0-hop messages are free in the traffic metric).
			if th.ID != 5 && th.ID != 10 {
				return
			}
			idx := 0
			if th.ID == 10 {
				idx = 1
			}
			mine := shared + proto.Addr(idx*proto.WordBytes)
			for i := 0; i < 50; i++ {
				v := th.Load(mine)
				th.Store(mine, v+1)
				th.Fence()
				// Inter-access compute: long enough for the other core's
				// registration to land between our accesses.
				th.Compute(300)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return m.Net.TotalTraffic()
	}
	word := run(false)
	lineT := run(true)
	if lineT < word*3 {
		t.Fatalf("line granularity did not show false sharing: word=%d line=%d", word, lineT)
	}
}
