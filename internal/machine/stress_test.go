package machine

import (
	"testing"

	"denovosync/internal/alloc"
	"denovosync/internal/cpu"
	"denovosync/internal/proto"
	"denovosync/internal/sim"
)

// tinyL1 shrinks the L1 to force evictions and writebacks — paths a
// 32 KB cache never exercises on kernel-sized footprints.
func tinyL1() Params {
	p := Params16()
	p.L1Size = 512 // 8 lines
	p.L1Ways = 2
	return p
}

// TestEvictionWritebackCorrectness: a working set 16x the L1 thrashes
// every set; all values must survive eviction round trips on every
// protocol, including registered-word writebacks on DeNovo.
func TestEvictionWritebackCorrectness(t *testing.T) {
	const words = 512 // 2 KB per thread >> 512 B L1
	for _, prot := range allProtocols {
		space := alloc.New()
		region := space.Region("big")
		bases := make([]proto.Addr, 16)
		for i := range bases {
			bases[i] = space.AllocAligned(words, region)
		}
		m := New(tinyL1(), prot, space)
		bad := false
		_, err := m.Run("thrash", func(th *cpu.Thread) {
			base := bases[th.ID]
			for w := 0; w < words; w++ {
				th.Store(base+proto.Addr(w*proto.WordBytes), uint64(th.ID*1000+w))
			}
			th.Fence()
			for pass := 0; pass < 2; pass++ {
				for w := 0; w < words; w++ {
					if v := th.Load(base + proto.Addr(w*proto.WordBytes)); v != uint64(th.ID*1000+w) {
						bad = true
					}
				}
			}
		})
		if err != nil {
			t.Fatalf("%v: %v", prot, err)
		}
		if bad {
			t.Fatalf("%v: value lost across eviction", prot)
		}
		var wbs uint64
		for _, l1 := range m.L1s {
			wbs += l1.Stats().WB
			if l1.Stats().Evicted == 0 {
				t.Fatalf("%v: no evictions despite thrashing", prot)
			}
		}
		if wbs == 0 {
			t.Fatalf("%v: no writebacks despite dirty evictions", prot)
		}
	}
}

// TestEvictionUnderContention mixes a shared sync hot word with an
// L1-thrashing private sweep, so sync words get evicted mid-protocol
// (stale forwards, write-back races).
func TestEvictionUnderContention(t *testing.T) {
	for _, prot := range allProtocols {
		space := alloc.New()
		hot := space.AllocPadded(space.Region("sync"))
		region := space.Region("big")
		bases := make([]proto.Addr, 16)
		for i := range bases {
			bases[i] = space.AllocAligned(256, region)
		}
		m := New(tinyL1(), prot, space)
		_, err := m.Run("evict-contend", func(th *cpu.Thread) {
			base := bases[th.ID]
			for i := 0; i < 10; i++ {
				th.FetchAdd(hot, 1)
				for w := 0; w < 64; w++ {
					th.Store(base+proto.Addr(((i*64+w)%256)*proto.WordBytes), uint64(w))
				}
				th.Fence()
				_ = th.SyncLoad(hot)
			}
		})
		if err != nil {
			t.Fatalf("%v: %v", prot, err)
		}
		if got := m.Store.Read(hot); got != 160 {
			t.Fatalf("%v: hot counter = %d, want 160", prot, got)
		}
	}
}

// TestIRIWLitmus: independent reads of independent writes — with fully
// sequentially consistent sync accesses, the two readers must not
// disagree on the order of the two writes.
func TestIRIWLitmus(t *testing.T) {
	for _, prot := range allProtocols {
		for trial := 0; trial < 4; trial++ {
			space := alloc.New()
			x := space.AllocPadded(space.Region("sync"))
			y := space.AllocPadded(space.Region("sync"))
			m := New(small16(), prot, space)
			var r1x, r1y, r2y, r2x uint64
			d := sim.Cycle(trial * 13)
			_, err := m.Run("iriw", func(th *cpu.Thread) {
				switch th.ID {
				case 0:
					th.Compute(10 + d)
					th.SyncStore(x, 1)
				case 1:
					th.Compute(15 + d)
					th.SyncStore(y, 1)
				case 2:
					r1x = th.SyncLoad(x)
					r1y = th.SyncLoad(y)
				case 3:
					r2y = th.SyncLoad(y)
					r2x = th.SyncLoad(x)
				}
			})
			if err != nil {
				t.Fatal(err)
			}
			// Forbidden under SC: reader 2 sees x before y, reader 3 sees
			// y before x.
			if r1x == 1 && r1y == 0 && r2y == 1 && r2x == 0 {
				t.Fatalf("%v trial %d: IRIW violation", prot, trial)
			}
		}
	}
}

// TestMessagePassingAllPairs runs producer/consumer across every pair of
// distinct tiles, covering all mesh distances and bank placements.
func TestMessagePassingAllPairs(t *testing.T) {
	for _, prot := range allProtocols {
		for _, pair := range [][2]int{{0, 15}, {3, 12}, {5, 6}, {15, 0}, {7, 8}} {
			space := alloc.New()
			flag := space.AllocPadded(space.Region("sync"))
			data := space.AllocAligned(1, space.Region("data"))
			m := New(small16(), prot, space)
			var got uint64
			prod, cons := pair[0], pair[1]
			_, err := m.Run("mp-pairs", func(th *cpu.Thread) {
				switch th.ID {
				case prod:
					th.Store(data, 7)
					th.SyncStore(flag, 1)
				case cons:
					th.SpinSyncLoadUntil(flag, func(v uint64) bool { return v == 1 })
					th.SelfInvalidate(proto.NewRegionSet(space.Region("data")))
					got = th.Load(data)
				}
			})
			if err != nil {
				t.Fatalf("%v %v: %v", prot, pair, err)
			}
			if got != 7 {
				t.Fatalf("%v %v: read %d", prot, pair, got)
			}
		}
	}
}

// TestManyWritersOneWord: heavy write-write racing through the
// distributed registration queue; the final value must reflect all
// FetchAdds even with evict-level cache pressure.
func TestManyWritersOneWord(t *testing.T) {
	for _, prot := range allProtocols {
		space := alloc.New()
		w := space.AllocPadded(space.Region("sync"))
		m := New(tinyL1(), prot, space)
		_, err := m.Run("ww", func(th *cpu.Thread) {
			for i := 0; i < 50; i++ {
				th.FetchAdd(w, 1)
			}
		})
		if err != nil {
			t.Fatalf("%v: %v", prot, err)
		}
		if got := m.Store.Read(w); got != 800 {
			t.Fatalf("%v: %d, want 800", prot, got)
		}
	}
}

// TestSyncWordEvictionStorm targets the writeback/re-registration race the
// model checker found (see internal/verify): sync words evicted by cache
// pressure while remote registrations are in flight. Without the
// registry's writeback ack gating re-registration, this configuration can
// mutually park two registrations and deadlock.
func TestSyncWordEvictionStorm(t *testing.T) {
	for _, prot := range []Protocol{DeNovoSync0, DeNovoSync} {
		space := alloc.New()
		// Many sync words mapping to few sets, plus data thrash, so
		// registered sync words are evicted constantly.
		var hot []proto.Addr
		for i := 0; i < 24; i++ {
			hot = append(hot, space.AllocPadded(space.Region("sync")))
		}
		big := space.AllocAligned(256, space.Region("big"))
		m := New(tinyL1(), prot, space)
		_, err := m.Run("evict-sync-storm", func(th *cpu.Thread) {
			for i := 0; i < 30; i++ {
				w := hot[(th.ID*7+i*3)%len(hot)]
				th.FetchAdd(w, 1)
				// Thrash the cache so the sync word gets evicted.
				for k := 0; k < 16; k++ {
					th.Store(big+proto.Addr(((i*16+k)%256)*proto.WordBytes), uint64(k))
				}
				th.Fence()
				_ = th.SyncLoad(hot[(th.ID*11+i*5)%len(hot)])
			}
		})
		if err != nil {
			t.Fatalf("%v: %v", prot, err)
		}
		var total uint64
		for _, w := range hot {
			total += m.Store.Read(w)
		}
		if total != 16*30 {
			t.Fatalf("%v: increments lost: %d, want 480", prot, total)
		}
	}
}

// TestLinkContentionMachines: the wormhole model runs end-to-end and
// slows hot-spot traffic without perturbing functional results.
func TestLinkContentionMachines(t *testing.T) {
	run := func(contended bool) (sim.Cycle, uint64) {
		space := alloc.New()
		w := space.AllocPadded(space.Region("sync"))
		p := Params16()
		p.LinkContention = contended
		m := New(p, MESI, space)
		rs, err := m.Run("hotspot", func(th *cpu.Thread) {
			for i := 0; i < 20; i++ {
				th.FetchAdd(w, 1)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return rs.ExecTime, m.Store.Read(w)
	}
	fast, v1 := run(false)
	slow, v2 := run(true)
	if v1 != 320 || v2 != 320 {
		t.Fatalf("functional results wrong: %d %d", v1, v2)
	}
	if slow <= fast {
		t.Fatalf("contended run not slower: %d vs %d", slow, fast)
	}
}
