package machine

import (
	"testing"
	"testing/quick"

	"denovosync/internal/alloc"
	"denovosync/internal/cpu"
	"denovosync/internal/locks"
	"denovosync/internal/proto"
)

// TestSignatureNoFalseNegatives: the Bloom signature never misses an
// inserted address (the correctness requirement of §3's dynamic option).
func TestSignatureNoFalseNegatives(t *testing.T) {
	f := func(addrs []uint32) bool {
		var sig proto.Signature
		for _, a := range addrs {
			sig.Add(proto.Addr(a))
		}
		for _, a := range addrs {
			if !sig.MightContain(proto.Addr(a)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSignatureUnionAndClear(t *testing.T) {
	var a, b proto.Signature
	a.Add(0x100)
	b.Add(0x204)
	a.UnionWith(b)
	if !a.MightContain(0x100) || !a.MightContain(0x204) {
		t.Fatal("union lost members")
	}
	a.Clear()
	if !a.Empty() {
		t.Fatal("clear left residue")
	}
}

// sigParams returns a 16-core machine config with signatures enabled.
func sigParams() Params {
	p := Params16()
	p.Signatures = true
	return p
}

// TestSignatureLockCorrectness: a signature-based lock provides the same
// data visibility as region-based self-invalidation — a reader that
// cached stale data before the writer's critical section must see the
// new values after its own acquire.
func TestSignatureLockCorrectness(t *testing.T) {
	for _, prot := range []Protocol{DeNovoSync0, DeNovoSync} {
		space := alloc.New()
		region := space.Region("shared")
		data := space.AllocAligned(8, region)
		lk := locks.NewTATAS(space, space.Region("lock"), 0 /* no region inv */, true)
		lk.Signatures = true
		turn := space.AllocPadded(space.Region("turn"))
		m := New(sigParams(), prot, space)
		bad := false
		_, err := m.Run("siglock", func(th *cpu.Thread) {
			switch th.ID {
			case 0:
				// Cache stale copies of the data first.
				for i := 0; i < 8; i++ {
					_ = th.Load(data + proto.Addr(i*proto.WordBytes))
				}
				th.SyncStore(turn, 1)
				// Wait for the writer's release, then acquire: the
				// signature must invalidate our stale copies.
				th.SpinSyncLoadUntil(turn, func(v uint64) bool { return v == 2 })
				tk := lk.Acquire(th)
				for i := 0; i < 8; i++ {
					if v := th.Load(data + proto.Addr(i*proto.WordBytes)); v != uint64(i+100) {
						bad = true
					}
				}
				lk.Release(th, tk)
			case 1:
				th.SpinSyncLoadUntil(turn, func(v uint64) bool { return v == 1 })
				tk := lk.Acquire(th)
				for i := 0; i < 8; i++ {
					th.Store(data+proto.Addr(i*proto.WordBytes), uint64(i+100))
				}
				th.Fence()
				lk.Release(th, tk)
				th.SyncStore(turn, 2)
			}
		})
		if err != nil {
			t.Fatalf("%v: %v", prot, err)
		}
		if bad {
			t.Fatalf("%v: stale data visible through signature lock", prot)
		}
	}
}

// TestSignatureSelectivity: words NOT written under the lock survive the
// signature acquire (unlike region invalidation, which drops the whole
// region) — the performance point of the extension.
func TestSignatureSelectivity(t *testing.T) {
	space := alloc.New()
	region := space.Region("shared")
	hot := space.AllocAligned(1, region)  // written under the lock
	cold := space.AllocAligned(1, region) // never written
	lk := locks.NewTATAS(space, space.Region("lock"), 0, true)
	lk.Signatures = true
	turn := space.AllocPadded(space.Region("turn"))
	m := New(sigParams(), DeNovoSync0, space)
	var hitsBefore, hitsAfter uint64
	_, err := m.Run("sigsel", func(th *cpu.Thread) {
		switch th.ID {
		case 0:
			_ = th.Load(hot)
			_ = th.Load(cold)
			th.SyncStore(turn, 1)
			th.SpinSyncLoadUntil(turn, func(v uint64) bool { return v == 2 })
			tk := lk.Acquire(th)
			hitsBefore = m.L1s[0].Stats().Hits[proto.DataLoad]
			_ = th.Load(cold) // must still be cached (hit)
			hitsAfter = m.L1s[0].Stats().Hits[proto.DataLoad]
			if th.Load(hot) != 7 { // must have been invalidated (fresh value)
				panic("stale hot word after signature acquire")
			}
			lk.Release(th, tk)
		case 1:
			th.SpinSyncLoadUntil(turn, func(v uint64) bool { return v == 1 })
			tk := lk.Acquire(th)
			th.Store(hot, 7)
			th.Fence()
			lk.Release(th, tk)
			th.SyncStore(turn, 2)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if hitsAfter != hitsBefore+1 {
		t.Fatalf("cold word was invalidated by the signature (hits %d -> %d)", hitsBefore, hitsAfter)
	}
}

// TestSignatureKernelFunctional: the counter kernels stay exact with
// signature locks on a signature-enabled machine.
func TestSignatureKernelFunctional(t *testing.T) {
	space := alloc.New()
	region := space.Region("ctr")
	ctr := space.AllocAligned(1, region)
	lk := locks.NewTATAS(space, space.Region("lock"), 0, true)
	lk.Signatures = true
	m := New(sigParams(), DeNovoSync, space)
	_, err := m.Run("sigctr", func(th *cpu.Thread) {
		for i := 0; i < 10; i++ {
			tk := lk.Acquire(th)
			v := th.Load(ctr)
			th.Store(ctr, v+1)
			th.Fence()
			lk.Release(th, tk)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Store.Read(ctr); got != 160 {
		t.Fatalf("counter = %d, want 160", got)
	}
}
