package machine_test

import (
	"testing"

	"denovosync/internal/cpu"
)

// TestBatchingMatchesEager proves the core↔engine handshake batching
// invariant: lazy replay of Compute/SWBackoff/SetPhase must produce the
// same event sequence — and therefore bit-identical statistics — as the
// eager one-handshake-per-call reference implementation. Not parallel: it
// toggles the global cpu.EagerOps reference switch.
func TestBatchingMatchesEager(t *testing.T) {
	if cpu.EagerOps {
		t.Skip("CPU_EAGER set: nothing to compare against")
	}
	for _, j := range detJobs() {
		lazy := fingerprint(runDetJob(t, j.kernel, j.prot, 7))
		cpu.EagerOps = true
		eager := fingerprint(runDetJob(t, j.kernel, j.prot, 7))
		cpu.EagerOps = false
		if lazy != eager {
			t.Fatalf("%s/%v: batched run diverged from eager reference:\neager: %s\nlazy:  %s",
				j.kernel, j.prot, eager, lazy)
		}
	}
}
