package mem

import (
	"sync"

	"denovosync/internal/proto"
)

// SigTable implements the DeNovoND-style [35] hardware write-signature
// store for dynamic self-invalidation: conceptually a small table carried
// with the synchronization variables.
//
// Semantics: when a core acquires lock L it must invalidate exactly the
// data written under L since *it* last held L. The table therefore keeps
// one accumulator per (lock, core): a release unions the releaser's
// write signature into every other core's accumulator for that lock; an
// acquire consumes (returns and clears) the acquirer's own accumulator.
// Bloom false positives only cause extra safe invalidations.
//
// The table is written from releasers and read from acquirers on different
// tiles, so the isolation prover audits it as a boundary rather than
// slicing it: architecturally the signatures ride the sync-variable
// ownership transfer (registration messages). Row lookup goes through a
// sync.Map (creation is the only contended step); the per-core cells of a
// row need no locking because every Publish/Consume pair of the same lock
// is ordered by that lock's ownership-transfer message chain — releases of
// a held lock and the acquires that observe them never overlap — a claim
// the race detector re-verifies on every parallel differential run.
//
//lpisolate:boundary(write signatures ride sync-variable transfer messages; rows shared under PDES with lock-transfer ordering)
type SigTable struct {
	cores int
	sigs  sync.Map // proto.Addr (word) -> []proto.Signature
}

// NewSigTable returns an empty table for a cores-core machine.
func NewSigTable(cores int) *SigTable {
	return &SigTable{cores: cores}
}

func (t *SigTable) entry(lock proto.Addr) []proto.Signature {
	w := lock.Word()
	if e, ok := t.sigs.Load(w); ok {
		return e.([]proto.Signature)
	}
	e, _ := t.sigs.LoadOrStore(w, make([]proto.Signature, t.cores))
	return e.([]proto.Signature)
}

// Publish merges the releaser's write signature into every other core's
// accumulator for lock (the releaser's own registered copies are already
// current).
func (t *SigTable) Publish(lock proto.Addr, sig proto.Signature, releaser int) {
	if sig.Empty() {
		return
	}
	e := t.entry(lock)
	for i := range e {
		if i != releaser {
			e[i].UnionWith(sig)
		}
	}
}

// Consume returns and clears core's accumulated signature for lock.
func (t *SigTable) Consume(lock proto.Addr, core int) proto.Signature {
	e := t.entry(lock)
	sig := e[core]
	e[core].Clear()
	return sig
}
