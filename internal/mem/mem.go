// Package mem provides the backing store for simulated memory values and
// the DRAM/memory-controller timing model.
//
// Values: the simulator keeps one committed value per word (the "ground
// truth"), updated at each access's protocol commit point. L1 caches hold
// snapshots taken at fill time, so protocol-visible staleness (a MESI core
// spinning on a yet-to-be-invalidated copy, a DeNovo core reading a stale
// Valid word) behaves exactly as the protocol allows.
package mem

import (
	"denovosync/internal/noc"
	"denovosync/internal/proto"
	"denovosync/internal/sim"
)

// Store is the word-granularity committed-value memory image.
//
// Every tile's L2 bank reads and commits through the one shared image, so
// the isolation prover cannot slice it per tile; the crossing is audited
// instead. Writes happen only at protocol commit points, which a PDES port
// makes messages to the word's home tile (the image shards by address with
// no cross-shard invariants).
//
//lpisolate:boundary(committed-value ground truth: shared by construction, PDES port shards the image by home tile)
type Store struct {
	words map[proto.Addr]uint64
}

// NewStore returns an empty (all-zero) memory image.
func NewStore() *Store { return &Store{words: make(map[proto.Addr]uint64)} }

// Read returns the committed value of the word containing addr.
func (s *Store) Read(addr proto.Addr) uint64 { return s.words[addr.Word()] }

// Write commits value to the word containing addr.
func (s *Store) Write(addr proto.Addr, value uint64) { s.words[addr.Word()] = value }

// ReadLine returns the committed values of all words in addr's line.
func (s *Store) ReadLine(addr proto.Addr) [proto.WordsPerLine]uint64 {
	var vals [proto.WordsPerLine]uint64
	line := addr.Line()
	for i := 0; i < proto.WordsPerLine; i++ {
		vals[i] = s.words[line+proto.Addr(i*proto.WordBytes)]
	}
	return vals
}

// DRAM models the off-chip memory behind the four on-chip controllers.
// An access from an L2 bank travels bank → controller, waits the DRAM
// access latency, and returns controller → bank; the line-interleaved
// controller choice and both network legs are accounted on the mesh.
type DRAM struct {
	eng *sim.Engine
	net *noc.Network

	// AccessLatency is the controller+DRAM service time per request.
	AccessLatency sim.Cycle

	// accesses counts serviced requests per memory controller, and each
	// controller's counter is incremented only by the delivery event that
	// runs AT that controller — the request counter is controller-local
	// state, not bank state, so the isolation prover can certify the
	// slicing (each memory controller is its own logical process).
	accesses [noc.NumMemCtrl]uint64
}

// NewDRAM builds the memory model on net.
func NewDRAM(eng *sim.Engine, net *noc.Network, accessLatency sim.Cycle) *DRAM {
	return &DRAM{eng: eng, net: net, AccessLatency: accessLatency}
}

// ControllerFor returns the memory controller node serving line.
func (d *DRAM) ControllerFor(line proto.Addr) proto.NodeID {
	return d.net.MemNode(ctrlIndex(line))
}

// ctrlIndex returns the line-interleaved controller index (0..NumMemCtrl-1).
func ctrlIndex(line proto.Addr) int {
	return int(line/proto.LineBytes) % noc.NumMemCtrl
}

// Fetch simulates an L2 bank at node bank fetching line from memory,
// calling done when the line data arrives back at the bank. class controls
// which traffic bucket the two messages land in (the class of the
// triggering transaction). isWrite selects request-only traffic shape for
// writebacks to memory (data travels toward the controller instead).
func (d *DRAM) Fetch(bank proto.NodeID, line proto.Addr, class proto.MsgClass, done func()) {
	mc := d.ControllerFor(line)
	idx := ctrlIndex(line)
	d.net.Send(bank, mc, class, proto.CtrlFlits, func() {
		d.accesses[idx]++
		d.eng.Schedule(d.AccessLatency, func() {
			d.net.Send(mc, bank, class, proto.LineDataFlits, done)
		})
	})
}

// WriteBack simulates flushing a dirty line from an L2 bank to memory.
func (d *DRAM) WriteBack(bank proto.NodeID, line proto.Addr, done func()) {
	mc := d.ControllerFor(line)
	idx := ctrlIndex(line)
	d.net.Send(bank, mc, proto.ClassWB, proto.LineDataFlits, func() {
		d.accesses[idx]++
		d.eng.Schedule(d.AccessLatency, func() {
			if done != nil {
				d.net.Send(mc, bank, proto.ClassWB, proto.CtrlFlits, done)
			}
		})
	})
}

// Accesses returns the number of DRAM requests serviced, summed over the
// controllers in index order.
func (d *DRAM) Accesses() uint64 {
	var t uint64
	for _, v := range d.accesses {
		t += v
	}
	return t
}
