// Package mem provides the backing store for simulated memory values and
// the DRAM/memory-controller timing model.
//
// Values: the simulator keeps one committed value per word (the "ground
// truth"), updated at each access's protocol commit point. L1 caches hold
// snapshots taken at fill time, so protocol-visible staleness (a MESI core
// spinning on a yet-to-be-invalidated copy, a DeNovo core reading a stale
// Valid word) behaves exactly as the protocol allows.
package mem

import (
	"sync"
	"sync/atomic"

	"denovosync/internal/noc"
	"denovosync/internal/proto"
	"denovosync/internal/sim"
)

// Store is the word-granularity committed-value memory image.
//
// Every tile's L2 bank reads and commits through the one shared image, so
// the isolation prover cannot slice it per tile; the crossing is audited
// instead. Writes happen only at protocol commit points: the protocol's
// single-writer discipline plus the message chains between commit points
// give every (write, later read) pair of the same word a happens-before
// edge, so the image needs no per-word locking. Serial machines use a
// plain map; partitioned machines switch to a lock-free per-line page
// table (Share) whose only synchronization is page creation — the values
// and their visibility order are identical in both modes.
//
//lpisolate:boundary(committed-value ground truth: shared by construction, sharded per line under PDES with message-chain ordering)
type Store struct {
	words map[proto.Addr]uint64

	// shared, when non-nil, replaces words: one page per cache line,
	// created on first touch through a sync.Map. Word slots are accessed
	// atomically: almost every conflicting pair is already ordered by a
	// protocol message chain, but a line-granularity fill may copy
	// neighboring words of the same line while their registrant commits
	// them (false sharing the protocol permits — the filler never reads
	// those values architecturally). Atomic slots make that benign race
	// well-defined without changing any value either mode observes.
	shared *sync.Map // proto.Addr (line) -> *[proto.WordsPerLine]uint64
}

// NewStore returns an empty (all-zero) memory image.
func NewStore() *Store { return &Store{words: make(map[proto.Addr]uint64)} }

// Share switches the image to the concurrent page-table representation
// (wiring-time only, before any values are written). Values and semantics
// are identical to the serial map; only the container changes.
func (s *Store) Share() {
	if len(s.words) > 0 {
		panic("mem: Share after writes")
	}
	s.shared = &sync.Map{}
}

// page returns the line's value page, creating it on first touch.
func (s *Store) page(line proto.Addr) *[proto.WordsPerLine]uint64 {
	if p, ok := s.shared.Load(line); ok {
		return p.(*[proto.WordsPerLine]uint64)
	}
	p, _ := s.shared.LoadOrStore(line, new([proto.WordsPerLine]uint64))
	return p.(*[proto.WordsPerLine]uint64)
}

// Read returns the committed value of the word containing addr.
func (s *Store) Read(addr proto.Addr) uint64 {
	if s.shared != nil {
		return atomic.LoadUint64(&s.page(addr.Line())[addr.WordIndex()])
	}
	return s.words[addr.Word()]
}

// Write commits value to the word containing addr.
func (s *Store) Write(addr proto.Addr, value uint64) {
	if s.shared != nil {
		atomic.StoreUint64(&s.page(addr.Line())[addr.WordIndex()], value)
		return
	}
	s.words[addr.Word()] = value
}

// ReadLine returns the committed values of all words in addr's line.
func (s *Store) ReadLine(addr proto.Addr) [proto.WordsPerLine]uint64 {
	if s.shared != nil {
		p := s.page(addr.Line())
		var vals [proto.WordsPerLine]uint64
		for i := range vals {
			vals[i] = atomic.LoadUint64(&p[i])
		}
		return vals
	}
	var vals [proto.WordsPerLine]uint64
	line := addr.Line()
	for i := 0; i < proto.WordsPerLine; i++ {
		vals[i] = s.words[line+proto.Addr(i*proto.WordBytes)]
	}
	return vals
}

// DRAM models the off-chip memory behind the four on-chip controllers.
// An access from an L2 bank travels bank → controller, waits the DRAM
// access latency, and returns controller → bank; the line-interleaved
// controller choice and both network legs are accounted on the mesh.
type DRAM struct {
	eng *sim.Engine
	net *noc.Network

	// engOf[i] drives controller i's service-latency wait. In serial mode
	// all entries are the one engine; a partitioned machine points each at
	// the engine of the logical process owning that controller's node
	// (controllers are merged with their corner tile's LP, so the wait is
	// scheduled — and the delivery closure below runs — on that LP).
	engOf [noc.NumMemCtrl]*sim.Engine

	// AccessLatency is the controller+DRAM service time per request.
	AccessLatency sim.Cycle

	// accesses counts serviced requests per memory controller, and each
	// controller's counter is incremented only by the delivery event that
	// runs AT that controller — the request counter is controller-local
	// state, not bank state, so the isolation prover can certify the
	// slicing (each memory controller is its own logical process).
	accesses [noc.NumMemCtrl]uint64
}

// NewDRAM builds the memory model on net.
func NewDRAM(eng *sim.Engine, net *noc.Network, accessLatency sim.Cycle) *DRAM {
	d := &DRAM{eng: eng, net: net, AccessLatency: accessLatency}
	for i := range d.engOf {
		d.engOf[i] = eng
	}
	return d
}

// SetEngines points each memory controller at the engine of its logical
// process (wiring-time only). engs[i] drives controller i.
func (d *DRAM) SetEngines(engs [noc.NumMemCtrl]*sim.Engine) {
	for i, e := range engs {
		if e == nil {
			panic("mem: nil engine in SetEngines")
		}
		d.engOf[i] = e
	}
}

// ControllerFor returns the memory controller node serving line.
func (d *DRAM) ControllerFor(line proto.Addr) proto.NodeID {
	return d.net.MemNode(ctrlIndex(line))
}

// ctrlIndex returns the line-interleaved controller index (0..NumMemCtrl-1).
func ctrlIndex(line proto.Addr) int {
	return int(line/proto.LineBytes) % noc.NumMemCtrl
}

// Fetch simulates an L2 bank at node bank fetching line from memory,
// calling done when the line data arrives back at the bank. class controls
// which traffic bucket the two messages land in (the class of the
// triggering transaction). isWrite selects request-only traffic shape for
// writebacks to memory (data travels toward the controller instead).
func (d *DRAM) Fetch(bank proto.NodeID, line proto.Addr, class proto.MsgClass, done func()) {
	mc := d.ControllerFor(line)
	idx := ctrlIndex(line)
	d.net.Send(bank, mc, class, proto.CtrlFlits, func() {
		d.accesses[idx]++
		d.engOf[idx].Schedule(d.AccessLatency, func() {
			d.net.Send(mc, bank, class, proto.LineDataFlits, done)
		})
	})
}

// WriteBack simulates flushing a dirty line from an L2 bank to memory.
func (d *DRAM) WriteBack(bank proto.NodeID, line proto.Addr, done func()) {
	mc := d.ControllerFor(line)
	idx := ctrlIndex(line)
	d.net.Send(bank, mc, proto.ClassWB, proto.LineDataFlits, func() {
		d.accesses[idx]++
		d.engOf[idx].Schedule(d.AccessLatency, func() {
			if done != nil {
				d.net.Send(mc, bank, proto.ClassWB, proto.CtrlFlits, done)
			}
		})
	})
}

// Accesses returns the number of DRAM requests serviced, summed over the
// controllers in index order.
func (d *DRAM) Accesses() uint64 {
	var t uint64
	for _, v := range d.accesses {
		t += v
	}
	return t
}
