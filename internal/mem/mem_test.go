package mem

import (
	"testing"

	"denovosync/internal/noc"
	"denovosync/internal/proto"
	"denovosync/internal/sim"
)

func TestStoreReadWrite(t *testing.T) {
	s := NewStore()
	if s.Read(0x100) != 0 {
		t.Fatal("fresh store not zero")
	}
	s.Write(0x100, 42)
	if s.Read(0x100) != 42 {
		t.Fatal("write lost")
	}
	// Word aliasing: sub-word addresses hit the same word.
	if s.Read(0x102) != 42 {
		t.Fatal("word aliasing broken")
	}
	s.Write(0x103, 7)
	if s.Read(0x100) != 7 {
		t.Fatal("sub-word write missed the word")
	}
}

func TestReadLine(t *testing.T) {
	s := NewStore()
	base := proto.Addr(0x40)
	for i := 0; i < proto.WordsPerLine; i++ {
		s.Write(base+proto.Addr(i*proto.WordBytes), uint64(i*10))
	}
	vals := s.ReadLine(base + 20) // any addr within the line
	for i, v := range vals {
		if v != uint64(i*10) {
			t.Fatalf("word %d = %d", i, v)
		}
	}
}

func TestDRAMFetchTiming(t *testing.T) {
	eng := sim.NewEngine()
	net := noc.New(eng, noc.Mesh{W: 4, H: 4}, 10, 3)
	d := NewDRAM(eng, net, 169)
	var at sim.Cycle
	// Bank at tile 0 (corner, same router as controller 0), line 0:
	// round trip = 0 hops + 169 + 0 hops.
	d.Fetch(0, 0, proto.ClassLD, func() { at = eng.Now() })
	eng.Run(0)
	if at != 169 {
		t.Fatalf("corner fetch completed at %d, want 169", at)
	}
	if d.Accesses() != 1 {
		t.Fatalf("accesses = %d", d.Accesses())
	}
}

func TestDRAMControllerInterleave(t *testing.T) {
	eng := sim.NewEngine()
	net := noc.New(eng, noc.Mesh{W: 4, H: 4}, 10, 3)
	d := NewDRAM(eng, net, 169)
	seen := map[proto.NodeID]bool{}
	for i := 0; i < 8; i++ {
		seen[d.ControllerFor(proto.Addr(i*proto.LineBytes))] = true
	}
	if len(seen) != noc.NumMemCtrl {
		t.Fatalf("lines map to %d controllers, want %d", len(seen), noc.NumMemCtrl)
	}
}

func TestDRAMWriteBack(t *testing.T) {
	eng := sim.NewEngine()
	net := noc.New(eng, noc.Mesh{W: 4, H: 4}, 10, 3)
	d := NewDRAM(eng, net, 169)
	done := false
	d.WriteBack(5, 0, func() { done = true })
	eng.Run(0)
	if !done {
		t.Fatal("writeback ack never arrived")
	}
	if tr := net.Traffic()[proto.ClassWB]; tr == 0 {
		t.Fatal("writeback produced no WB traffic")
	}
}
