package fuzz

import (
	"bytes"
	"testing"
)

// TestMutatorDeterminism: a mutator is a pure function of its seed — two
// mutators built from the same seed emit byte-identical scenario
// sequences through the same call pattern (the property campaign resume
// rests on), and different seeds diverge.
func TestMutatorDeterminism(t *testing.T) {
	const n = 40
	sequence := func(seed uint64) [][]byte {
		mu := NewMutator(seed)
		var pool []Scenario
		var out [][]byte
		for i := 0; i < n; i++ {
			s := mu.Candidate(pool)
			pool = append(pool, s) // grow the pool exactly as a campaign would
			out = append(out, s.Canonical())
		}
		return out
	}

	a, b := sequence(42), sequence(42)
	for i := range a {
		if !bytes.Equal(a[i], b[i]) {
			t.Fatalf("candidate %d differs between two seed-42 mutators:\n%s\n%s", i, a[i], b[i])
		}
	}

	c := sequence(43)
	same := 0
	for i := range a {
		if bytes.Equal(a[i], c[i]) {
			same++
		}
	}
	if same == n {
		t.Fatal("seed 42 and seed 43 emitted identical sequences")
	}
}

// TestMutateMetamorphic: every mutation of a valid scenario validates
// (the mutator never emits a candidate the executor would reject), and
// the parent is never modified.
func TestMutateMetamorphic(t *testing.T) {
	mu := NewMutator(7)
	parents := []Scenario{
		tinyScenario(1, "DS"),
		tinyScenario(2, "M"),
		putRaceScenario(),
		stressScenario("DSsig", 3),
	}
	// Fuzzer-generated parents too, so mutation composes with generation.
	for i := 0; i < 6; i++ {
		parents = append(parents, mu.Generate())
	}
	for pi, parent := range parents {
		if err := parent.Validate(); err != nil {
			t.Fatalf("parent %d invalid before mutation: %v", pi, err)
		}
		before := parent.Canonical()
		for i := 0; i < 50; i++ {
			child := mu.Mutate(parent)
			if err := child.Validate(); err != nil {
				t.Fatalf("parent %d mutation %d invalid: %v\n%s", pi, i, err, child.Canonical())
			}
			if !bytes.Equal(parent.Canonical(), before) {
				t.Fatalf("parent %d modified by mutation %d", pi, i)
			}
		}
	}
}

// TestGenerateValid: generated candidates always validate, including the
// store-ownership repair (racing plain stores promoted to sync forms).
func TestGenerateValid(t *testing.T) {
	mu := NewMutator(11)
	for i := 0; i < 100; i++ {
		s := mu.Generate()
		if err := s.Validate(); err != nil {
			t.Fatalf("generated scenario %d invalid: %v\n%s", i, err, s.Canonical())
		}
	}
}

func TestRepairStoresPromotesRaces(t *testing.T) {
	s := tinyScenario(1, "DS")
	s.Progs[0].Ops[0] = Op{Kind: OpStore, Addr: 5, Val: 1}
	s.Progs[1].Ops[0] = Op{Kind: OpStore, Addr: 5, Val: 2}
	repairStores(&s)
	if s.Progs[0].Ops[0].Kind != OpSyncStore || s.Progs[1].Ops[0].Kind != OpSyncStore {
		t.Fatalf("racing plain stores not promoted: %s / %s", s.Progs[0].Ops[0].Kind, s.Progs[1].Ops[0].Kind)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("repaired scenario still invalid: %v", err)
	}

	// A single storer keeps its plain store (no gratuitous promotion).
	s = tinyScenario(1, "DS")
	s.Progs[0].Ops[0] = Op{Kind: OpStore, Addr: 5, Val: 1}
	repairStores(&s)
	if s.Progs[0].Ops[0].Kind != OpStore {
		t.Fatal("lone plain store was promoted")
	}
}
