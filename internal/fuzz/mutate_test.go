package fuzz

import (
	"bytes"
	"testing"

	"denovosync/internal/proto"
)

// TestMutatorDeterminism: a mutator is a pure function of its seed — two
// mutators built from the same seed emit byte-identical scenario
// sequences through the same call pattern (the property campaign resume
// rests on), and different seeds diverge.
func TestMutatorDeterminism(t *testing.T) {
	const n = 40
	sequence := func(seed uint64) [][]byte {
		mu := NewMutator(seed)
		var pool []Scenario
		var out [][]byte
		for i := 0; i < n; i++ {
			s := mu.Candidate(pool)
			pool = append(pool, s) // grow the pool exactly as a campaign would
			out = append(out, s.Canonical())
		}
		return out
	}

	a, b := sequence(42), sequence(42)
	for i := range a {
		if !bytes.Equal(a[i], b[i]) {
			t.Fatalf("candidate %d differs between two seed-42 mutators:\n%s\n%s", i, a[i], b[i])
		}
	}

	c := sequence(43)
	same := 0
	for i := range a {
		if bytes.Equal(a[i], c[i]) {
			same++
		}
	}
	if same == n {
		t.Fatal("seed 42 and seed 43 emitted identical sequences")
	}
}

// TestMutateMetamorphic: every mutation of a valid scenario validates
// (the mutator never emits a candidate the executor would reject), and
// the parent is never modified.
func TestMutateMetamorphic(t *testing.T) {
	mu := NewMutator(7)
	parents := []Scenario{
		tinyScenario(1, "DS"),
		tinyScenario(2, "M"),
		putRaceScenario(),
		stressScenario("DSsig", 3),
	}
	// Fuzzer-generated parents too, so mutation composes with generation.
	for i := 0; i < 6; i++ {
		parents = append(parents, mu.Generate())
	}
	for pi, parent := range parents {
		if err := parent.Validate(); err != nil {
			t.Fatalf("parent %d invalid before mutation: %v", pi, err)
		}
		before := parent.Canonical()
		for i := 0; i < 50; i++ {
			child := mu.Mutate(parent)
			if err := child.Validate(); err != nil {
				t.Fatalf("parent %d mutation %d invalid: %v\n%s", pi, i, err, child.Canonical())
			}
			if !bytes.Equal(parent.Canonical(), before) {
				t.Fatalf("parent %d modified by mutation %d", pi, i)
			}
		}
	}
}

// TestGenerateValid: generated candidates always validate, including the
// store-ownership repair (racing plain stores promoted to sync forms).
func TestGenerateValid(t *testing.T) {
	mu := NewMutator(11)
	for i := 0; i < 100; i++ {
		s := mu.Generate()
		if err := s.Validate(); err != nil {
			t.Fatalf("generated scenario %d invalid: %v\n%s", i, err, s.Canonical())
		}
	}
}

// TestShapeEvictionRace checks the geometry/blocking-sync-aware operator
// rewrites candidates into the direct-mapped conflict shape behind the
// (denovo.Registry roL2 recvWB) holdout: ways pinned to 1, a conflicting
// same-set load planted immediately after a blocking sync access, the
// arena grown to reach it, and a nonzero jitter bound so the racing
// writeback can linger in flight.
func TestShapeEvictionRace(t *testing.T) {
	// hasConflictPair reports whether some program contains a blocking
	// sync op immediately followed by a load exactly one way-stride away.
	hasConflictPair := func(s Scenario) bool {
		_, _, sets := s.Geometry()
		for _, p := range s.Progs {
			for i := 0; i+1 < len(p.Ops); i++ {
				switch p.Ops[i].Kind {
				case OpSyncLoad, OpSyncStore, OpFetchAdd, OpCAS, OpTAS, OpExchange:
				default:
					continue
				}
				next := p.Ops[i+1]
				if next.Kind == OpLoad && next.Addr == p.Ops[i].Addr+sets*proto.WordsPerLine {
					return true
				}
			}
		}
		return false
	}

	t.Run("existing sync op gains a same-set conflict", func(t *testing.T) {
		mu := NewMutator(1)
		s := tinyScenario(1, "DS")
		s.Progs[0].Ops[0] = Op{Kind: OpSyncLoad, Addr: 3}
		mu.shapeEvictionRace(&s)
		if s.L1Ways != 1 {
			t.Fatalf("L1Ways = %d, want direct-mapped", s.L1Ways)
		}
		if s.MaxJitter == 0 {
			t.Fatal("shaper left MaxJitter at 0: the race window cannot open")
		}
		if !hasConflictPair(s) {
			t.Fatalf("no sync-then-conflicting-load pair planted:\n%s", s.Canonical())
		}
		// The arena reaches every planted conflict word.
		for _, p := range s.Progs {
			for _, op := range p.Ops {
				if op.Kind == OpLoad && op.Addr >= s.ArenaWords {
					t.Fatalf("arena %d does not reach conflict word %d", s.ArenaWords, op.Addr)
				}
			}
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("shaped scenario invalid: %v", err)
		}
	})

	t.Run("sync-free program gets a planted sync load", func(t *testing.T) {
		mu := NewMutator(2)
		s := tinyScenario(1, "DSsig")
		for pi := range s.Progs {
			for oi := range s.Progs[pi].Ops {
				s.Progs[pi].Ops[oi] = Op{Kind: OpLoad, Addr: 1}
			}
		}
		mu.shapeEvictionRace(&s)
		if !hasConflictPair(s) {
			t.Fatalf("no conflict pair planted into sync-free program:\n%s", s.Canonical())
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("shaped scenario invalid: %v", err)
		}
	})

	t.Run("reachable through Mutate and always valid", func(t *testing.T) {
		mu := NewMutator(5)
		parent := stressScenario("DS", 3)
		shaped := 0
		for i := 0; i < 400; i++ {
			child := mu.Mutate(parent)
			if err := child.Validate(); err != nil {
				t.Fatalf("mutation %d invalid: %v", i, err)
			}
			if child.L1Ways == 1 && hasConflictPair(child) {
				shaped++
			}
		}
		if shaped == 0 {
			t.Fatal("400 mutations never produced the eviction-race shape")
		}
	})
}

func TestRepairStoresPromotesRaces(t *testing.T) {
	s := tinyScenario(1, "DS")
	s.Progs[0].Ops[0] = Op{Kind: OpStore, Addr: 5, Val: 1}
	s.Progs[1].Ops[0] = Op{Kind: OpStore, Addr: 5, Val: 2}
	repairStores(&s)
	if s.Progs[0].Ops[0].Kind != OpSyncStore || s.Progs[1].Ops[0].Kind != OpSyncStore {
		t.Fatalf("racing plain stores not promoted: %s / %s", s.Progs[0].Ops[0].Kind, s.Progs[1].Ops[0].Kind)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("repaired scenario still invalid: %v", err)
	}

	// A single storer keeps its plain store (no gratuitous promotion).
	s = tinyScenario(1, "DS")
	s.Progs[0].Ops[0] = Op{Kind: OpStore, Addr: 5, Val: 1}
	repairStores(&s)
	if s.Progs[0].Ops[0].Kind != OpStore {
		t.Fatal("lone plain store was promoted")
	}
}
