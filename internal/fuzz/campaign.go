package fuzz

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"denovosync/internal/chaos"
	"denovosync/internal/exp"
	"denovosync/internal/stats"
)

// CampaignConfig describes one coverage-guided fuzzing campaign.
//
// A campaign is byte-reproducible: candidate generation, acceptance, and
// corpus contents are a pure function of (Seed, Batches, BatchSize,
// seed-corpus contents). Parallelism, interruption, and resume only
// change *when* scenarios execute, never which are accepted — executions
// land in an exp journal keyed by scenario fingerprint, and on resume
// the campaign replays its acceptance decisions from the journaled
// results (Record.Aux) instead of re-simulating.
type CampaignConfig struct {
	// Seed drives the mutator (candidate generation order).
	Seed uint64
	// Batches of BatchSize candidates follow the seed-replay batch 0.
	// Acceptance is processed between batches, so batch N mutates a pool
	// that already contains batch N-1's discoveries.
	Batches   int
	BatchSize int

	// CorpusDir is the read-only seed corpus (testdata/corpus); it is
	// replayed as batch 0 and never written. Empty or missing = start
	// from scratch.
	CorpusDir string

	// OutDir receives the campaign outputs: OutDir/corpus (accepted
	// entries), OutDir/findings (non-ok scenarios), OutDir/journal.jsonl
	// (the resumable execution journal, unless Journal overrides it).
	OutDir  string
	Journal string

	// Workers bounds parallel scenario executions (<= 0 = GOMAXPROCS).
	Workers int

	// StopAfter stops the campaign after this many executions in this
	// session (0 = no limit) — the deterministic stand-in for ^C that
	// the kill-and-resume test uses.
	StopAfter int

	// Targets, when non-empty, ends the campaign early once every listed
	// atlas tuple ("controller/state/event") is covered — the fuzz-smoke
	// gate's budget guard.
	Targets []string

	// Progress receives live engine progress lines.
	Progress io.Writer
}

// CampaignReport summarizes one RunCampaign call.
type CampaignReport struct {
	Covered    []string // sorted atlas tuples covered by seeds + accepted entries
	Accepted   int      // entries written to OutDir/corpus
	Findings   int      // non-ok scenarios written to OutDir/findings
	Executed   int      // simulations run this session
	Resumed    int      // results replayed from the journal
	Batches    int      // batches fully processed (seed replay included)
	Stopped    bool     // interrupted by StopAfter before completing
	TargetsMet bool     // all Targets covered
}

// candidate is one scheduled scenario with its acceptance provenance.
type candidate struct {
	s    Scenario
	seed *Entry // non-nil for batch-0 seed-corpus replays
}

// campaignState is the deterministic acceptance state, evolved strictly
// in candidate order.
type campaignState struct {
	covered     map[string]bool
	pool        []Scenario
	maxMessages int
	maxEvents   uint64
}

// ScenarioRun wraps a scenario as a content-addressed exp run: the
// fingerprint is the workload slug and the canonical JSON rides along so
// the journal is self-describing and the run key changes iff the
// scenario does.
func ScenarioRun(s Scenario) exp.Run {
	return exp.Run{
		Kind:     exp.KindScenario,
		Workload: s.Fingerprint(),
		Protocol: s.Config,
		Cores:    s.Cores,
		Scenario: json.RawMessage(s.Canonical()),
	}
}

// Executor is the exp.Engine executor for scenario runs. A non-ok
// verdict is a successful fuzzing outcome, not an execution failure — it
// travels in the Aux payload so the engine neither retries it nor marks
// the record failed.
func Executor(r exp.Run) (*stats.RunStats, json.RawMessage, error) {
	s, err := DecodeScenario(r.Scenario)
	if err != nil {
		return nil, nil, err
	}
	aux, err := json.Marshal(Execute(s))
	if err != nil {
		return nil, nil, err
	}
	return nil, aux, nil
}

// resultOf recovers a scenario Result from its journal record. Failed
// records (panic, bad scenario JSON) degrade to an error verdict.
func resultOf(rec *exp.Record) (Result, error) {
	if rec.Status != exp.StatusOK {
		return Result{Verdict: chaos.VerdictError, Detail: rec.Error}, nil
	}
	var r Result
	if err := json.Unmarshal(rec.Aux, &r); err != nil {
		return Result{}, fmt.Errorf("fuzz: journal record %s has an unreadable result payload: %w", rec.Key, err)
	}
	return r, nil
}

// RunCampaign executes a coverage-guided campaign. See CampaignConfig
// for the determinism contract. The returned report is valid even when
// err is non-nil wherever possible (a StopAfter interruption is Stopped,
// not an error).
func RunCampaign(cfg CampaignConfig) (*CampaignReport, error) {
	seeds, err := LoadCorpus(cfg.CorpusDir)
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(cfg.OutDir, 0o755); err != nil {
		return nil, fmt.Errorf("fuzz: creating campaign out dir: %w", err)
	}
	journalPath := cfg.Journal
	if journalPath == "" {
		journalPath = filepath.Join(cfg.OutDir, "journal.jsonl")
	}
	j, prior, err := exp.OpenJournal(journalPath)
	if err != nil {
		return nil, err
	}
	defer j.Close()

	mu := NewMutator(cfg.Seed)
	st := &campaignState{covered: map[string]bool{}}
	report := &CampaignReport{}
	budget := cfg.StopAfter

	for b := 0; b <= cfg.Batches; b++ {
		var cands []candidate
		if b == 0 {
			for i := range seeds {
				cands = append(cands, candidate{s: seeds[i].Scenario, seed: &seeds[i]})
			}
		} else {
			for i := 0; i < cfg.BatchSize; i++ {
				cands = append(cands, candidate{s: mu.Candidate(st.pool)})
			}
		}
		if len(cands) == 0 {
			report.Batches++
			continue
		}
		if cfg.StopAfter > 0 && budget <= 0 {
			report.Stopped = true
			break
		}

		plan := exp.Plan{ID: fmt.Sprintf("scenfuzz/seed=%d/batch=%d", cfg.Seed, b)}
		for _, c := range cands {
			plan.Runs = append(plan.Runs, ScenarioRun(c.s))
		}
		eng := &exp.Engine{
			Workers:   cfg.Workers,
			Journal:   j,
			Prior:     prior,
			StopAfter: budget,
			Progress:  cfg.Progress,
			Executor:  Executor,
		}
		records, sum, err := eng.Execute(plan)
		report.Executed += sum.Executed
		report.Resumed += sum.Resumed
		if cfg.StopAfter > 0 {
			budget -= sum.Executed
		}
		stopped := err == exp.ErrStopped
		if err != nil && !stopped {
			return report, err
		}
		for k, rec := range records { //simlint:allow determinism: map-to-map merge, order-insensitive
			prior[k] = rec // later batches dedup against this one
		}

		// Acceptance: strictly in candidate order, over the contiguous
		// prefix that has results. On interruption the suffix is missing;
		// resume regenerates the identical batch, recovers the prefix from
		// the journal, executes the rest, and replays this loop — so the
		// accepted set never depends on when the interruption happened.
		complete := true
		for i, c := range cands {
			rec, ok := records[ScenarioRun(c.s).Key()]
			if !ok {
				complete = false
				break
			}
			res, err := resultOf(rec)
			if err != nil {
				return report, err
			}
			if err := st.accept(cfg, b, i, c, res, report); err != nil {
				return report, err
			}
		}
		if complete && !stopped {
			report.Batches++
		}
		if stopped {
			report.Stopped = true
			break
		}
		if len(cfg.Targets) > 0 && st.allCovered(cfg.Targets) {
			report.TargetsMet = true
			break
		}
	}

	report.Covered = sortedKeys(st.covered)
	if len(cfg.Targets) > 0 {
		report.TargetsMet = st.allCovered(cfg.Targets)
	}
	return report, nil
}

// accept applies the deterministic acceptance rule to one candidate.
func (st *campaignState) accept(cfg CampaignConfig, batch, idx int, c candidate, res Result, report *CampaignReport) error {
	if c.seed != nil {
		// Seed replay doubles as the determinism gate: a checked-in entry
		// whose live result digest differs from the recorded one means the
		// simulator's behavior drifted without the corpus being re-recorded.
		if c.seed.Result.Verdict != "" && c.seed.Result.Digest() != res.Digest() {
			return fmt.Errorf("fuzz: corpus entry %s drifted: recorded result digest %s, live %s — re-record with `scenfuzz run` or investigate the behavior change", c.s.Fingerprint(), c.seed.Result.Digest(), res.Digest())
		}
		for _, h := range res.Hits {
			st.covered[h] = true
		}
		st.pool = append(st.pool, c.s)
		st.bump(res)
		return nil
	}

	if !res.OK() {
		report.Findings++
		_, err := WriteEntry(filepath.Join(cfg.OutDir, "findings"), Entry{
			Note:     fmt.Sprintf("campaign seed=%d batch=%d cand=%d: verdict %s", cfg.Seed, batch, idx, res.Verdict),
			Scenario: c.s,
			Result:   res,
		})
		return err
	}

	newTuples := 0
	for _, h := range res.Hits {
		if !st.covered[h] {
			newTuples++
		}
	}
	reason := ""
	switch {
	case newTuples > 0:
		reason = fmt.Sprintf("+%d new atlas tuples", newTuples)
	case res.Messages > st.maxMessages:
		reason = fmt.Sprintf("new message-count maximum (%d)", res.Messages)
	case res.Events > st.maxEvents:
		reason = fmt.Sprintf("new event-count maximum (%d)", res.Events)
	}
	st.bump(res)
	if reason == "" {
		return nil
	}
	report.Accepted++
	for _, h := range res.Hits {
		st.covered[h] = true
	}
	st.pool = append(st.pool, c.s)
	_, err := WriteEntry(filepath.Join(cfg.OutDir, "corpus"), Entry{
		Note:     fmt.Sprintf("campaign seed=%d batch=%d cand=%d: %s", cfg.Seed, batch, idx, reason),
		Scenario: c.s,
		Result:   res,
	})
	return err
}

// bump advances the boundary maxima (in candidate order, so the
// "first scenario to push the boundary" is deterministic).
func (st *campaignState) bump(res Result) {
	if res.Messages > st.maxMessages {
		st.maxMessages = res.Messages
	}
	if res.Events > st.maxEvents {
		st.maxEvents = res.Events
	}
}

func (st *campaignState) allCovered(targets []string) bool {
	for _, t := range targets {
		if !st.covered[t] {
			return false
		}
	}
	return true
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m { //simlint:allow determinism: keys are sorted below
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Replay executes an entry's scenario and reports whether the live
// result matches the recorded one digest-for-digest.
func Replay(e Entry) (Result, bool) {
	res := Execute(e.Scenario)
	return res, e.Result.Verdict == "" || res.Digest() == e.Result.Digest()
}
