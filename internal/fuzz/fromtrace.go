package fuzz

import (
	"fmt"

	"denovosync/internal/sim"
	"denovosync/internal/trace"
)

// FromTrace converts an ingested trace.v1 program into a replayable
// scenario: each captured stream becomes one core's Rounds=1 program,
// the core count rounds up to the nearest machine size, and the caller
// chooses the protocol config and perturbation. The conversion is where
// an external trace enters the fuzzer's world — from here it can be
// executed, minimized, mutated, and kept in the corpus like any other
// scenario.
//
// A trace whose plain stores (st) race stores from another core fails
// validation: replay does not reproduce the original program's
// synchronization (a lock acquired in the capture run may be lost in
// replay), so cross-core plain-store sharing cannot be proven DRF, and
// non-DRF data accesses are outside DeNovo's contract (see
// validateStoreOwnership). Re-capture with those accesses marked sync.
func FromTrace(p *trace.Program, config string, seed uint64, maxJitter sim.Cycle) (Scenario, error) {
	cores := 0
	for _, c := range []int{1, 2, 4, 8, 16} {
		if p.Cores <= c {
			cores = c
			break
		}
	}
	if cores == 0 {
		return Scenario{}, fmt.Errorf("fuzz: trace uses %d cores; the largest machine has 16", p.Cores)
	}
	s := Scenario{
		Schema:     Schema,
		Kind:       KindProgram,
		Config:     config,
		Cores:      cores,
		ArenaWords: p.ArenaWords,
		Seed:       seed,
		MaxJitter:  maxJitter,
	}
	for core, stream := range p.Streams {
		prog := Prog{}
		for _, op := range stream {
			prog.Ops = append(prog.Ops, Op{
				Kind: op.Op, // trace op vocabulary is a subset of the scenario's
				Addr: op.Addr,
				Val:  op.Val,
				Old:  op.Old,
			})
		}
		if len(prog.Ops) > 0 {
			prog.Rounds = 1
		}
		if len(prog.Ops) > MaxProgOps {
			return Scenario{}, fmt.Errorf("fuzz: trace core %d has %d ops; a program scenario holds at most %d", core, len(prog.Ops), MaxProgOps)
		}
		s.Progs = append(s.Progs, prog)
	}
	if err := s.Validate(); err != nil {
		return Scenario{}, err
	}
	return s, nil
}
