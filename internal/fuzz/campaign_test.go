package fuzz

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"denovosync/internal/exp"
)

// seedDir writes a small seed corpus (results unrecorded, so no drift
// gate) and returns its path.
func seedDir(t *testing.T) string {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "seeds")
	for _, s := range []Scenario{tinyScenario(1, "DS"), tinyScenario(2, "M")} {
		if _, err := WriteEntry(dir, Entry{Note: "test seed", Scenario: s}); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// treeBytes flattens a directory into sorted (name, content) pairs.
func treeBytes(t *testing.T, dir string) map[string][]byte {
	t.Helper()
	out := map[string][]byte{}
	des, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return out
	}
	if err != nil {
		t.Fatal(err)
	}
	for _, de := range des {
		b, err := os.ReadFile(filepath.Join(dir, de.Name()))
		if err != nil {
			t.Fatal(err)
		}
		out[de.Name()] = b
	}
	return out
}

func sameTree(t *testing.T, label string, a, b map[string][]byte) {
	t.Helper()
	var names []string
	for n := range a {
		names = append(names, n)
	}
	for n := range b {
		if _, ok := a[n]; !ok {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	for _, n := range names {
		av, aok := a[n]
		bv, bok := b[n]
		if !aok || !bok {
			t.Fatalf("%s: entry %s present in only one run (full=%v resumed=%v)", label, n, aok, bok)
		}
		if !bytes.Equal(av, bv) {
			t.Fatalf("%s: entry %s differs between the full and the killed-and-resumed campaign", label, n)
		}
	}
}

// TestCampaignKillResumeByteIdentical: a campaign interrupted by
// StopAfter and resumed with the identical command produces the exact
// corpus and findings bytes of an uninterrupted campaign, and the resume
// deduplicates every already-journaled execution by run key instead of
// re-simulating it. The engine's StopAfter is best-effort under worker
// parallelism (in-flight runs complete), so the assertions are the
// determinism identities that hold wherever the cut lands, not exact
// per-session counts.
func TestCampaignKillResumeByteIdentical(t *testing.T) {
	seeds := seedDir(t)
	// Seed 2's candidate stream has no cross-batch duplicate keys, so the
	// strict Resumed == Executed identities below hold (a duplicate would
	// legitimately count as Resumed against the earlier batch's record).
	base := CampaignConfig{
		Seed: 2, Batches: 2, BatchSize: 3,
		CorpusDir: seeds, Workers: 2,
	}

	// Reference: one uninterrupted campaign.
	full := base
	full.OutDir = filepath.Join(t.TempDir(), "full")
	fullRep, err := RunCampaign(full)
	if err != nil {
		t.Fatalf("full campaign: %v", err)
	}
	if fullRep.Stopped {
		t.Fatal("uninterrupted campaign reported Stopped")
	}
	if fullRep.Executed < 5 { // 2 seeds + 2x3 candidates, minus engine dedup
		t.Fatalf("full campaign executed %d scenarios, want >= 5", fullRep.Executed)
	}

	// Kill after ~3 executions (the cut may land mid-batch or at the
	// batch boundary), then resume to completion.
	killed := base
	killed.OutDir = filepath.Join(t.TempDir(), "killed")
	killed.StopAfter = 3
	rep1, err := RunCampaign(killed)
	if err != nil {
		t.Fatalf("interrupted campaign: %v", err)
	}
	if !rep1.Stopped {
		t.Fatalf("interrupted campaign not Stopped (executed %d)", rep1.Executed)
	}
	if rep1.Executed >= fullRep.Executed {
		t.Fatalf("interrupted campaign executed everything (%d)", rep1.Executed)
	}

	resumed := killed
	resumed.StopAfter = 0
	rep2, err := RunCampaign(resumed)
	if err != nil {
		t.Fatalf("resumed campaign: %v", err)
	}
	if rep2.Stopped {
		t.Fatal("resumed campaign did not run to completion")
	}
	if rep2.Resumed != rep1.Executed {
		t.Fatalf("resume replayed %d journaled results, want %d (journal dedup by run key)", rep2.Resumed, rep1.Executed)
	}
	if rep1.Executed+rep2.Executed != fullRep.Executed {
		t.Fatalf("kill+resume executed %d+%d scenarios, full campaign %d — something re-ran or was skipped",
			rep1.Executed, rep2.Executed, fullRep.Executed)
	}

	sameTree(t, "corpus",
		treeBytes(t, filepath.Join(full.OutDir, "corpus")),
		treeBytes(t, filepath.Join(killed.OutDir, "corpus")))
	sameTree(t, "findings",
		treeBytes(t, filepath.Join(full.OutDir, "findings")),
		treeBytes(t, filepath.Join(killed.OutDir, "findings")))

	// Covered sets agree too.
	if got, want := fullRep.Covered, rep2.Covered; len(got) != len(want) {
		t.Fatalf("covered-set size differs: full %d, resumed %d", len(got), len(want))
	} else {
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("covered tuple %d differs: %s vs %s", i, got[i], want[i])
			}
		}
	}
}

// TestScenarioRunAuxRoundTrip: a scenario's journaled record carries its
// coverage result in Aux, survives a journal reopen byte-for-byte, and
// resultOf recovers it — the mechanism that lets a resumed campaign
// replay acceptance without re-simulating.
func TestScenarioRunAuxRoundTrip(t *testing.T) {
	s := tinyScenario(3, "DS0")
	run := ScenarioRun(s)
	if run.Kind != exp.KindScenario || run.Workload != s.Fingerprint() {
		t.Fatalf("ScenarioRun key fields: kind=%q workload=%q", run.Kind, run.Workload)
	}
	if ScenarioRun(tinyScenario(4, "DS0")).Key() == run.Key() {
		t.Fatal("different scenarios share a run key")
	}

	_, aux, err := Executor(run)
	if err != nil {
		t.Fatalf("Executor: %v", err)
	}
	var direct Result
	if err := json.Unmarshal(aux, &direct); err != nil {
		t.Fatalf("unmarshaling executor aux: %v", err)
	}
	if want := Execute(s); direct.Digest() != want.Digest() {
		t.Fatalf("executor aux digest %s, direct Execute digest %s", direct.Digest(), want.Digest())
	}

	// Through the journal: write one OK record with the aux, reopen,
	// recover the result.
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, prior, err := exp.OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(prior) != 0 {
		t.Fatalf("fresh journal has %d records", len(prior))
	}
	rec := &exp.Record{Key: run.Key(), Run: run, Status: exp.StatusOK, Attempts: 1, Aux: aux}
	if err := j.Append(rec); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	_, prior, err = exp.OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := prior[run.Key()]
	if !ok {
		t.Fatal("journaled scenario record not recovered by run key")
	}
	res, err := resultOf(got)
	if err != nil {
		t.Fatal(err)
	}
	if res.Digest() != direct.Digest() {
		t.Fatalf("journal round-trip changed the result digest: %s vs %s", res.Digest(), direct.Digest())
	}
}
