package fuzz

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// EntrySchema versions the corpus-entry format.
const EntrySchema = "scenfuzz.entry.v1"

// Entry is one corpus artifact: a scenario plus the recorded outcome of
// running it. Checked-in entries are executable documentation — `scenfuzz
// replay` re-runs the scenario and compares the live result digest
// against the recorded one, so any protocol change that shifts a
// covered transition, a verdict, or a functional summary shows up as a
// corpus diff instead of silent drift.
type Entry struct {
	Schema string `json:"schema"`
	// Note records provenance: which battery or campaign produced the
	// entry and why it was kept (new tuples, boundary push, failure).
	Note     string   `json:"note,omitempty"`
	Scenario Scenario `json:"scenario"`
	Result   Result   `json:"result"`
}

// Name is the entry's content-addressed filename: the scenario
// fingerprint, so a corpus directory can never hold two entries for the
// same scenario and renames are detectable.
func (e Entry) Name() string {
	return e.Scenario.Fingerprint() + ".json"
}

// DecodeEntry strictly parses a corpus entry: unknown fields, trailing
// data, schema mismatches, and invalid scenarios are errors, never
// panics (FuzzScenarioDecode's other target).
func DecodeEntry(data []byte) (Entry, error) {
	var e Entry
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&e); err != nil {
		return Entry{}, fmt.Errorf("fuzz: parsing corpus entry: %w", err)
	}
	if dec.More() {
		return Entry{}, fmt.Errorf("fuzz: trailing data after corpus entry JSON")
	}
	if e.Schema != EntrySchema {
		return Entry{}, fmt.Errorf("fuzz: corpus entry schema %q, want %q", e.Schema, EntrySchema)
	}
	if err := e.Scenario.Validate(); err != nil {
		return Entry{}, err
	}
	return e, nil
}

// LoadEntry reads and strictly decodes one corpus entry file.
func LoadEntry(path string) (Entry, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return Entry{}, err
	}
	e, err := DecodeEntry(b)
	if err != nil {
		return Entry{}, fmt.Errorf("%s: %w", path, err)
	}
	return e, nil
}

// WriteEntry writes e into dir under its content-addressed name,
// creating dir if needed, and returns the path. Rewriting an existing
// entry is fine (same scenario ⇒ same name ⇒ same content unless the
// recorded result changed, which is exactly the diff we want to see).
func WriteEntry(dir string, e Entry) (string, error) {
	e.Schema = EntrySchema
	if err := e.Scenario.Validate(); err != nil {
		return "", err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("fuzz: creating corpus dir: %w", err)
	}
	b, err := json.MarshalIndent(e, "", "  ")
	if err != nil {
		return "", fmt.Errorf("fuzz: marshaling corpus entry: %w", err)
	}
	path := filepath.Join(dir, e.Name())
	if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// LoadCorpus loads every *.json entry of dir in sorted filename order
// (deterministic iteration is load-bearing: campaign seeds replay in
// this order). A filename that does not match its scenario fingerprint
// is an error — it means the file was edited without re-recording.
// A missing directory is an empty corpus, not an error.
func LoadCorpus(dir string) ([]Entry, error) {
	names, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var files []string
	for _, de := range names {
		if !de.IsDir() && strings.HasSuffix(de.Name(), ".json") {
			files = append(files, de.Name())
		}
	}
	sort.Strings(files)
	var out []Entry
	for _, name := range files {
		e, err := LoadEntry(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		if want := e.Name(); name != want {
			return nil, fmt.Errorf("fuzz: corpus entry %s is named for a different scenario (fingerprint says %s) — edited without re-recording?", filepath.Join(dir, name), want)
		}
		out = append(out, e)
	}
	return out, nil
}
