// Package fuzz is the coverage-guided scenario fuzzer: it mutates
// kernel schedules (per-core op interleavings and sync-site choices),
// chaos jitter seeds and limits, and cache geometry, runs each candidate
// through the real machine with atlas transition observers and the chaos
// invariant monitor attached, and keeps a content-addressed corpus of
// scenarios that increase atlas-tuple coverage or push invariant
// boundaries. Campaigns ride internal/exp (parallel, journaled,
// resumable — a seeded campaign is byte-reproducible), failures hand off
// to the chaos shrinker's bisection for minimization, and every corpus
// entry is a replayable JSON artifact (`scenfuzz replay`).
//
// Everything here is inside the determinism boundary: scenario
// execution, mutation, and corpus acceptance depend only on the campaign
// seed and the journal, never on wall clock or host parallelism.
package fuzz

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math/bits"

	"denovosync/internal/chaos"
	"denovosync/internal/kernels"
	"denovosync/internal/proto"
	"denovosync/internal/sim"
)

// Schema is the versioned scenario format identifier. Bump it whenever
// the meaning of a field changes so stale corpus entries fail loudly
// instead of replaying as something else.
const Schema = "scen.v1"

// Scenario kinds.
const (
	// KindProgram is a synthetic workload: explicit per-core op streams
	// over one line-aligned arena.
	KindProgram = "program"
	// KindKernel wraps one of the paper's 24 kernels (schedule mutation
	// happens through iteration count, jitter, and cache geometry) and
	// inherits the chaos engine's full oracle including the metamorphic
	// baseline differential.
	KindKernel = "kernel"
)

// Op kinds of a program scenario. Sync variants are the DeNovoSync
// "arbitrary synchronization" accesses (registered at L2); the
// sync-site mutation toggles an op between its plain and sync form.
const (
	OpLoad      = "ld"
	OpStore     = "st"
	OpSyncLoad  = "syld"
	OpSyncStore = "syst"
	OpFetchAdd  = "fa"
	OpCAS       = "cas"
	OpTAS       = "tas"
	OpExchange  = "xchg"
	OpCompute   = "comp"
	// OpSweep loads Lines lines starting at Addr with a Stride-line
	// step: stride 1 is a capacity thrash, stride = set count is a
	// conflict-set sweep that evicts exactly one set — the two eviction
	// primitives behind every known eviction race.
	OpSweep = "sweep"
)

// Op is one operation of a program scenario. Addr is a word index into
// the scenario arena; Val/Old are operand values (store/exchange value,
// fetch-add delta, CAS new/expected); Lo/Hi bound a compute delay drawn
// from the thread's deterministic RNG; Lines/Stride shape a sweep.
type Op struct {
	Kind   string    `json:"op"`
	Addr   int       `json:"a,omitempty"`
	Val    uint64    `json:"v,omitempty"`
	Old    uint64    `json:"old,omitempty"`
	Lo     sim.Cycle `json:"lo,omitempty"`
	Hi     sim.Cycle `json:"hi,omitempty"`
	Lines  int       `json:"n,omitempty"`
	Stride int       `json:"s,omitempty"`
}

// Prog is one core's workload: Ops executed Rounds times.
type Prog struct {
	Rounds int  `json:"rounds"`
	Ops    []Op `json:"ops"`
}

// Scenario is one self-contained fuzz candidate: workload, protocol
// configuration, cache geometry, and timing perturbation. Its canonical
// JSON is the content address (Fingerprint) used by the corpus and the
// campaign journal.
type Scenario struct {
	Schema string `json:"schema"`
	Kind   string `json:"kind"`
	Config string `json:"config"` // M | DS0 | DS | DSsig

	// Cores is the machine size. Program scenarios may shrink the mesh
	// (1..16 cores); kernel scenarios run the paper's 16-core machine.
	Cores int `json:"cores"`

	// Cache geometry (0 = Table 1 defaults: 8 ways, 32 KiB).
	L1Ways int `json:"l1_ways,omitempty"`
	L1KB   int `json:"l1_kb,omitempty"`

	// Program payload.
	ArenaWords int    `json:"arena_words,omitempty"`
	Progs      []Prog `json:"progs,omitempty"`

	// Kernel payload.
	Kernel string `json:"kernel,omitempty"`
	Iters  int    `json:"iters,omitempty"`

	// Timing perturbation (chaos.Policy: per-class FIFO preserved).
	Seed        uint64    `json:"seed"`
	MaxJitter   sim.Cycle `json:"max_jitter,omitempty"`
	JitterLimit *int      `json:"jitter_limit,omitempty"` // nil = unlimited

	// WatchdogCycles overrides the deadlock budget (0 = 2_000_000).
	WatchdogCycles sim.Cycle `json:"watchdog_cycles,omitempty"`
}

// Validation bounds: generous enough for every directed race we know,
// tight enough that no scenario can run away (the op budget bounds
// simulated work, the arena bounds memory).
const (
	MaxArenaWords = 1 << 21 // 8 MiB of simulated words
	// MaxProgOps is sized for trace ingestion (a captured stream becomes
	// one Rounds=1 program); the mutator generates far smaller programs.
	MaxProgOps     = 1 << 16
	MaxRounds      = 10_000
	MaxSweepLines  = 4096
	MaxTotalOps    = 2_000_000 // sum over cores of rounds x op weight
	MaxJitterBound = 100_000
	MaxComputeHi   = 100_000
	MaxKernelIters = 200
)

// stores reports whether the op can write its target word (CAS counts
// conservatively even though it only writes on success).
func (o Op) stores() bool {
	switch o.Kind {
	case OpStore, OpSyncStore, OpFetchAdd, OpCAS, OpTAS, OpExchange:
		return true
	}
	return false
}

// weight is the op's contribution to the total-op budget.
func (o Op) weight() int {
	if o.Kind == OpSweep {
		return o.Lines
	}
	return 1
}

// touchesWord reports the highest arena word index the op can access.
func (o Op) lastWord() int {
	if o.Kind == OpSweep {
		return o.Addr + (o.Lines-1)*o.Stride*proto.WordsPerLine
	}
	return o.Addr
}

func validOpKind(k string) bool {
	switch k {
	case OpLoad, OpStore, OpSyncLoad, OpSyncStore, OpFetchAdd, OpCAS,
		OpTAS, OpExchange, OpCompute, OpSweep:
		return true
	}
	return false
}

func validCores(c int) bool {
	switch c {
	case 1, 2, 4, 8, 16:
		return true
	}
	return false
}

// MeshFor returns the mesh dimensions for a program-scenario core count.
func MeshFor(cores int) (w, h int, err error) {
	switch cores {
	case 1:
		return 1, 1, nil
	case 2:
		return 2, 1, nil
	case 4:
		return 2, 2, nil
	case 8:
		return 4, 2, nil
	case 16:
		return 4, 4, nil
	}
	return 0, 0, fmt.Errorf("fuzz: unsupported core count %d (want 1, 2, 4, 8 or 16)", cores)
}

func validWays(w int) bool {
	switch w {
	case 0, 1, 2, 4, 8, 16:
		return true
	}
	return false
}

func validL1KB(kb int) bool {
	switch kb {
	case 0, 4, 8, 16, 32, 64:
		return true
	}
	return false
}

// Geometry returns the effective L1 geometry (ways, size in bytes, set
// count) with the Table 1 defaults filled in.
func (s Scenario) Geometry() (ways, size, sets int) {
	ways, size = 8, 32*1024
	if s.L1Ways > 0 {
		ways = s.L1Ways
	}
	if s.L1KB > 0 {
		size = s.L1KB * 1024
	}
	return ways, size, size / proto.LineBytes / ways
}

// Validate checks the scenario against the schema bounds. A scenario
// that validates is safe to execute: bounded memory, bounded simulated
// work, legal machine configuration.
func (s Scenario) Validate() error {
	if s.Schema != Schema {
		return fmt.Errorf("fuzz: scenario schema %q, want %q", s.Schema, Schema)
	}
	if _, ok := chaos.ConfigByName(s.Config); !ok {
		return fmt.Errorf("fuzz: unknown protocol config %q (want M, DS0, DS or DSsig)", s.Config)
	}
	if !validWays(s.L1Ways) {
		return fmt.Errorf("fuzz: unsupported L1 ways %d", s.L1Ways)
	}
	if !validL1KB(s.L1KB) {
		return fmt.Errorf("fuzz: unsupported L1 size %d KiB", s.L1KB)
	}
	ways, size, _ := s.Geometry()
	if lines := size / proto.LineBytes; ways > lines {
		return fmt.Errorf("fuzz: %d ways exceed the %d lines of a %d B cache", ways, lines, size)
	}
	if s.MaxJitter < 0 || s.MaxJitter > MaxJitterBound {
		return fmt.Errorf("fuzz: max jitter %d out of range [0, %d]", s.MaxJitter, MaxJitterBound)
	}
	if s.JitterLimit != nil && *s.JitterLimit < 0 {
		return fmt.Errorf("fuzz: negative jitter limit %d (omit for unlimited)", *s.JitterLimit)
	}
	if s.WatchdogCycles < 0 {
		return fmt.Errorf("fuzz: negative watchdog budget")
	}

	switch s.Kind {
	case KindProgram:
		return s.validateProgram()
	case KindKernel:
		return s.validateKernel()
	default:
		return fmt.Errorf("fuzz: unknown scenario kind %q (want %q or %q)", s.Kind, KindProgram, KindKernel)
	}
}

func (s Scenario) validateProgram() error {
	if !validCores(s.Cores) {
		return fmt.Errorf("fuzz: unsupported core count %d (want 1, 2, 4, 8 or 16)", s.Cores)
	}
	if s.Kernel != "" || s.Iters != 0 {
		return fmt.Errorf("fuzz: program scenario carries kernel fields")
	}
	if s.ArenaWords < 1 || s.ArenaWords > MaxArenaWords {
		return fmt.Errorf("fuzz: arena %d words out of range [1, %d]", s.ArenaWords, MaxArenaWords)
	}
	if len(s.Progs) == 0 {
		return fmt.Errorf("fuzz: program scenario has no programs")
	}
	if len(s.Progs) > s.Cores {
		return fmt.Errorf("fuzz: %d programs for %d cores", len(s.Progs), s.Cores)
	}
	total := 0
	for ci, p := range s.Progs {
		if len(p.Ops) > MaxProgOps {
			return fmt.Errorf("fuzz: core %d has %d ops (max %d)", ci, len(p.Ops), MaxProgOps)
		}
		if len(p.Ops) == 0 {
			if p.Rounds != 0 {
				return fmt.Errorf("fuzz: core %d has %d rounds but no ops", ci, p.Rounds)
			}
			continue
		}
		if p.Rounds < 1 || p.Rounds > MaxRounds {
			return fmt.Errorf("fuzz: core %d rounds %d out of range [1, %d]", ci, p.Rounds, MaxRounds)
		}
		w := 0
		for oi, op := range p.Ops {
			if err := s.validateOp(op); err != nil {
				return fmt.Errorf("fuzz: core %d op %d: %w", ci, oi, err)
			}
			w += op.weight()
		}
		total += w * p.Rounds
	}
	if total == 0 {
		return fmt.Errorf("fuzz: program scenario performs no operations")
	}
	if total > MaxTotalOps {
		return fmt.Errorf("fuzz: %d total ops exceed the %d budget", total, MaxTotalOps)
	}
	return s.validateStoreOwnership()
}

// validateStoreOwnership enforces the DeNovo data-access contract on
// program scenarios: a word written by a plain store (st) from one core
// must not be stored by any other core in any form. DeNovo commits plain
// stores locally at issue ("DRF data makes the local commit safe" —
// registration establishes locatability in the background), so the
// committed image records racing plain stores in issue order while the
// registry serializes them in registration order; the divergence the
// invariant monitor would then report is the *workload's* data race, not
// a protocol bug. Racing writes must use their sync forms (syst and the
// atomics), which is exactly the "arbitrary synchronization" the paper
// supports — the mutator repairs candidates to this rule rather than
// generating oracle noise.
func (s Scenario) validateStoreOwnership() error {
	plainBy := map[int]uint32{} // word -> bitmask of progs plain-storing it
	storeBy := map[int]uint32{} // word -> bitmask of progs storing it at all
	for ci, p := range s.Progs {
		for _, op := range p.Ops {
			if !op.stores() {
				continue
			}
			storeBy[op.Addr] |= 1 << ci
			if op.Kind == OpStore {
				plainBy[op.Addr] |= 1 << ci
			}
		}
	}
	bad := -1
	for w, pb := range plainBy { //simlint:allow determinism: reduced to the minimum key below
		if pb != 0 && bits.OnesCount32(storeBy[w]) > 1 && (bad < 0 || w < bad) {
			bad = w
		}
	}
	if bad >= 0 {
		return fmt.Errorf("fuzz: word %d is plain-stored (st) while another core also stores it — racing writes must use sync forms (DeNovo's data accesses are DRF by contract)", bad)
	}
	return nil
}

func (s Scenario) validateOp(op Op) error {
	if !validOpKind(op.Kind) {
		return fmt.Errorf("unknown op kind %q", op.Kind)
	}
	if op.Kind == OpCompute {
		if op.Lo < 0 || op.Hi <= op.Lo || op.Hi > MaxComputeHi {
			return fmt.Errorf("compute range [%d, %d) invalid (need 0 <= lo < hi <= %d)", op.Lo, op.Hi, MaxComputeHi)
		}
		return nil
	}
	if op.Addr < 0 || op.Addr >= s.ArenaWords {
		return fmt.Errorf("address %d outside the %d-word arena", op.Addr, s.ArenaWords)
	}
	if op.Kind == OpSweep {
		if op.Lines < 1 || op.Lines > MaxSweepLines {
			return fmt.Errorf("sweep of %d lines out of range [1, %d]", op.Lines, MaxSweepLines)
		}
		if op.Stride < 1 || op.Stride > MaxSweepLines {
			return fmt.Errorf("sweep stride %d out of range [1, %d]", op.Stride, MaxSweepLines)
		}
		if last := op.lastWord(); last >= s.ArenaWords {
			return fmt.Errorf("sweep reaches word %d outside the %d-word arena", last, s.ArenaWords)
		}
	}
	return nil
}

func (s Scenario) validateKernel() error {
	if s.Cores != 16 {
		return fmt.Errorf("fuzz: kernel scenarios run the 16-core machine (got %d)", s.Cores)
	}
	if s.ArenaWords != 0 || len(s.Progs) != 0 {
		return fmt.Errorf("fuzz: kernel scenario carries program fields")
	}
	if _, ok := kernels.ByID(s.Kernel); !ok {
		return fmt.Errorf("fuzz: unknown kernel %q", s.Kernel)
	}
	if s.Iters < 0 || s.Iters > MaxKernelIters {
		return fmt.Errorf("fuzz: kernel iters %d out of range [0, %d]", s.Iters, MaxKernelIters)
	}
	return nil
}

// Canonical returns the scenario's canonical encoding: compact JSON in
// fixed struct-field order. Fingerprints hash exactly these bytes.
func (s Scenario) Canonical() []byte {
	b, err := json.Marshal(s)
	if err != nil {
		panic(fmt.Sprintf("fuzz: marshaling Scenario: %v", err)) // unreachable: no unmarshalable fields
	}
	return b
}

// Fingerprint is the scenario's content address (16 hex digits over the
// canonical encoding, domain-separated by the schema version).
func (s Scenario) Fingerprint() string {
	sum := sha256.Sum256(append([]byte("scenfuzz:"+Schema+":"), s.Canonical()...))
	return hex.EncodeToString(sum[:8])
}

// DecodeScenario strictly parses scenario JSON: unknown fields, trailing
// garbage, and schema violations are errors, never panics — the decoder
// is the trust boundary for corpus files and external trace conversions,
// and FuzzScenarioDecode hammers it with malformed input.
func DecodeScenario(data []byte) (Scenario, error) {
	var s Scenario
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return Scenario{}, fmt.Errorf("fuzz: parsing scenario: %w", err)
	}
	if dec.More() {
		return Scenario{}, fmt.Errorf("fuzz: trailing data after scenario JSON")
	}
	if err := s.Validate(); err != nil {
		return Scenario{}, err
	}
	return s, nil
}

// String identifies the scenario for progress lines and errors.
func (s Scenario) String() string {
	switch s.Kind {
	case KindKernel:
		return fmt.Sprintf("kernel:%s/%s/seed=%d", s.Kernel, s.Config, s.Seed)
	default:
		return fmt.Sprintf("program/%s/%dc/seed=%d/fp=%s", s.Config, s.Cores, s.Seed, s.Fingerprint())
	}
}
