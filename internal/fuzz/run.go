package fuzz

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strings"

	"denovosync/internal/alloc"
	"denovosync/internal/chaos"
	"denovosync/internal/cpu"
	"denovosync/internal/machine"
	"denovosync/internal/proto"
)

// Result is one scenario execution's outcome: the chaos verdict, the
// atlas-tuple coverage it produced, and the counters the corpus and
// minimizer feed on. It is the campaign's journaled Aux payload, so it
// must round-trip through JSON losslessly.
type Result struct {
	Verdict string `json:"verdict"`
	Detail  string `json:"detail,omitempty"`

	// Hits is the sorted, deduplicated set of atlas transition tuples
	// ("controller/state/event") the run exercised — the fuzzer's
	// coverage signal.
	Hits []string `json:"hits,omitempty"`

	// Messages is the NoC send count (the minimizer's jitter-limit
	// bound); Events the simulation event count. Both are boundary
	// signals: a scenario that pushes either to a new maximum is kept.
	Messages int    `json:"messages"`
	Events   uint64 `json:"events"`

	// Summary is the functional digest of the run (retired-op results
	// for programs, the kernel summary for kernels): the replay
	// determinism check compares it, not just the verdict.
	Summary string `json:"summary,omitempty"`
}

// OK reports a fully green verdict.
func (r Result) OK() bool { return r.Verdict == chaos.VerdictOK }

// Digest is the result's determinism fingerprint: two executions of the
// same scenario must produce identical digests, on any host, under any
// campaign parallelism. `scenfuzz replay` and the corpus gate enforce it.
func (r Result) Digest() string {
	b, err := json.Marshal(r)
	if err != nil {
		panic(fmt.Sprintf("fuzz: marshaling Result: %v", err)) // unreachable: no unmarshalable fields
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:8])
}

// HitTuple splits a Result hit ("controller/state/event") back into its
// parts for atlas matching. ok is false if h is not a hit string.
func HitTuple(h string) (controller, state, event string, ok bool) {
	parts := strings.SplitN(h, "/", 3)
	if len(parts) != 3 {
		return "", "", "", false
	}
	return parts[0], parts[1], parts[2], true
}

// hitSet collects transition tuples; safe because the simulator is
// single-goroutine inside one Execute call.
type hitSet map[string]bool

func (h hitSet) observer() func(controller, state, event string) {
	return func(controller, state, event string) {
		h[controller+"/"+state+"/"+event] = true
	}
}

func (h hitSet) sorted() []string {
	out := make([]string, 0, len(h))
	for k := range h { //simlint:allow determinism: keys are sorted below
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Execute runs one scenario on a fresh machine and returns its outcome.
// Invalid scenarios produce a VerdictError result rather than an error:
// inside a campaign, a bad mutation is a data point, not a crash.
func Execute(s Scenario) Result {
	if err := s.Validate(); err != nil {
		return Result{Verdict: chaos.VerdictError, Detail: err.Error()}
	}
	switch s.Kind {
	case KindKernel:
		return executeKernel(s)
	default:
		return executeProgram(s)
	}
}

// executeKernel delegates to the chaos engine: the full oracle applies,
// including the metamorphic baseline differential (kernels are
// schedule-invariant by contract, so a mismatch is a real bug).
func executeKernel(s Scenario) Result {
	hits := hitSet{}
	res := chaos.RunSpecObserved(chaos.Spec{
		Kernel:         s.Kernel,
		Config:         s.Config,
		Cores:          s.Cores,
		Iters:          s.Iters,
		Seed:           s.Seed,
		MaxJitter:      s.MaxJitter,
		Limit:          s.JitterLimit,
		L1Ways:         s.L1Ways,
		L1KB:           s.L1KB,
		WatchdogCycles: s.WatchdogCycles,
	}, hits.observer())
	out := Result{
		Verdict:  res.Verdict,
		Detail:   res.Detail,
		Hits:     hits.sorted(),
		Messages: res.Messages,
		Summary:  res.PerturbedSummary,
	}
	if res.Stats != nil {
		out.Events = res.Stats.Events
	}
	return out
}

// executeProgram interprets the per-core op streams on a fresh machine
// under the scenario's jitter policy, with the live invariant monitor
// and watchdog armed. There is no baseline differential: unlike kernels,
// raw programs are intentionally racy, so their results are legitimately
// schedule-dependent — the oracle is the invariant set, not functional
// equivalence.
func executeProgram(s Scenario) Result {
	cfg, _ := chaos.ConfigByName(s.Config) // Validate checked it
	w, h, err := MeshFor(s.Cores)
	if err != nil {
		return Result{Verdict: chaos.VerdictError, Detail: err.Error()}
	}

	p := machine.Params16()
	p.Cores, p.MeshW, p.MeshH = s.Cores, w, h
	p.Signatures = cfg.Signatures
	ways, size, _ := s.Geometry()
	p.L1Ways, p.L1Size = ways, size
	p.WatchdogCycles = s.WatchdogCycles
	if p.WatchdogCycles == 0 {
		p.WatchdogCycles = 2_000_000
	}

	m := machine.New(p, cfg.Protocol, alloc.New())
	hits := hitSet{}
	chaos.AttachTransitionObservers(m, hits.observer())
	pb := chaos.Attach(m.Eng, m.Net, chaos.Policy{
		Seed:           s.Seed,
		MaxJitter:      s.MaxJitter,
		Limit:          jitterLimit(s.JitterLimit),
		KeepClassOrder: true,
	})
	mo := chaos.NewMonitor(m, chaos.MonitorConfig{})
	mo.Start()

	arena := m.Space.AllocAligned(s.ArenaWords, m.Space.Region("scenfuzz.arena"))
	digests := make([]uint64, len(s.Progs))
	st, runErr := m.RunThreads("scenfuzz", func(i int) machine.Workload {
		if i >= len(s.Progs) {
			return func(*cpu.Thread) {} // idle core
		}
		prog := s.Progs[i]
		return func(t *cpu.Thread) {
			digests[i] = runProg(t, arena, prog)
		}
	})

	out := Result{Messages: pb.Sent()}
	if vs := mo.Violations(); len(vs) > 0 {
		out.Verdict = chaos.VerdictViolation
		out.Detail = mo.Err().Error()
	} else {
		var werr *machine.WatchdogError
		switch {
		case errors.As(runErr, &werr):
			out.Verdict = chaos.VerdictWatchdog
			out.Detail = fmt.Sprintf("no core retired an operation for %d cycles (stalled at cycle %d)", werr.Budget, werr.Snapshot.Cycle)
		case runErr != nil:
			out.Verdict = chaos.VerdictError
			out.Detail = runErr.Error()
		default:
			out.Verdict = chaos.VerdictOK
		}
	}
	out.Hits = hits.sorted()
	if st != nil {
		out.Events = st.Events
	}
	var parts []string
	for i, d := range digests {
		parts = append(parts, fmt.Sprintf("c%d=%016x", i, d))
	}
	out.Summary = strings.Join(parts, " ")
	return out
}

// jitterLimit maps the scenario's optional limit onto Policy.Limit
// (nil = unlimited = -1).
func jitterLimit(l *int) int {
	if l == nil {
		return -1
	}
	return *l
}

// runProg interprets one core's program, folding every retired value
// into an FNV-1a digest so the functional outcome is one word of the
// run's Summary.
func runProg(t *cpu.Thread, arena proto.Addr, p Prog) uint64 {
	var h uint64 = 0xcbf29ce484222325
	mix := func(v uint64) {
		h ^= v
		h *= 0x100000001b3
	}
	word := func(idx int) proto.Addr { return arena + proto.Addr(idx*proto.WordBytes) }
	for r := 0; r < p.Rounds; r++ {
		for _, op := range p.Ops {
			switch op.Kind {
			case OpLoad:
				mix(t.Load(word(op.Addr)))
			case OpStore:
				t.Store(word(op.Addr), op.Val)
			case OpSyncLoad:
				mix(t.SyncLoad(word(op.Addr)))
			case OpSyncStore:
				t.SyncStore(word(op.Addr), op.Val)
			case OpFetchAdd:
				mix(t.FetchAdd(word(op.Addr), op.Val))
			case OpCAS:
				if t.CAS(word(op.Addr), op.Old, op.Val) {
					mix(1)
				} else {
					mix(0)
				}
			case OpTAS:
				mix(t.TestAndSet(word(op.Addr)))
			case OpExchange:
				mix(t.Exchange(word(op.Addr), op.Val))
			case OpCompute:
				t.Compute(t.RNG.Cycles(op.Lo, op.Hi))
			case OpSweep:
				for l := 0; l < op.Lines; l++ {
					mix(t.Load(word(op.Addr + l*op.Stride*proto.WordsPerLine)))
				}
			}
		}
	}
	return h
}
