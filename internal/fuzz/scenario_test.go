package fuzz

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// tinyScenario is a minimal valid program scenario used across the tests.
func tinyScenario(seed uint64, config string) Scenario {
	return Scenario{
		Schema: Schema, Kind: KindProgram, Config: config, Cores: 2,
		ArenaWords: 64, Seed: seed, MaxJitter: 16,
		Progs: []Prog{
			{Rounds: 2, Ops: []Op{{Kind: OpSyncStore, Addr: 0, Val: 1}, {Kind: OpLoad, Addr: 1}}},
			{Rounds: 2, Ops: []Op{{Kind: OpSyncLoad, Addr: 0}, {Kind: OpTAS, Addr: 2}}},
		},
	}
}

func TestValidateRejections(t *testing.T) {
	lim := -1
	cases := []struct {
		name string
		mut  func(*Scenario)
		want string
	}{
		{"bad schema", func(s *Scenario) { s.Schema = "scen.v0" }, "schema"},
		{"bad config", func(s *Scenario) { s.Config = "MOESI" }, "config"},
		{"bad cores", func(s *Scenario) { s.Cores = 3 }, "core count"},
		{"bad ways", func(s *Scenario) { s.L1Ways = 3 }, "ways"},
		{"bad size", func(s *Scenario) { s.L1KB = 5 }, "L1 size"},
		{"negative jitter limit", func(s *Scenario) { s.JitterLimit = &lim }, "jitter limit"},
		{"no programs", func(s *Scenario) { s.Progs = nil }, "no programs"},
		{"too many programs", func(s *Scenario) { s.Progs = append(s.Progs, s.Progs[0]) }, "programs for"},
		{"rounds without ops", func(s *Scenario) { s.Progs[0].Ops = nil }, "no ops"},
		{"unknown op", func(s *Scenario) { s.Progs[0].Ops[0].Kind = "nop" }, "unknown op"},
		{"address out of arena", func(s *Scenario) { s.Progs[0].Ops[1].Addr = 64 }, "outside"},
		{"sweep overruns arena", func(s *Scenario) {
			s.Progs[0].Ops[1] = Op{Kind: OpSweep, Addr: 0, Lines: 10, Stride: 1}
		}, "sweep reaches"},
		{"kernel fields on program", func(s *Scenario) { s.Kernel = "bar-central-ub" }, "kernel fields"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := tinyScenario(1, "DS")
			tc.mut(&s)
			err := s.Validate()
			if err == nil {
				t.Fatalf("Validate accepted a scenario with %s", tc.name)
			}
			if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}

	if err := tinyScenario(1, "DS").Validate(); err != nil {
		t.Fatalf("baseline scenario rejected: %v", err)
	}
}

func TestValidateStoreOwnership(t *testing.T) {
	// Two cores plain-storing the same word: rejected.
	s := tinyScenario(1, "DS")
	s.Progs[0].Ops[0] = Op{Kind: OpStore, Addr: 5, Val: 1}
	s.Progs[1].Ops[0] = Op{Kind: OpStore, Addr: 5, Val: 2}
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "plain-stored") {
		t.Fatalf("racing plain stores accepted (err=%v)", err)
	}

	// Plain store racing a sync-form store (atomic): still rejected — the
	// plain side commits locally at issue.
	s = tinyScenario(1, "DS")
	s.Progs[0].Ops[0] = Op{Kind: OpStore, Addr: 5, Val: 1}
	s.Progs[1].Ops[0] = Op{Kind: OpFetchAdd, Addr: 5, Val: 1}
	if err := s.Validate(); err == nil {
		t.Fatal("plain store racing an atomic accepted")
	}

	// Single plain storer, other cores only load: fine.
	s = tinyScenario(1, "DS")
	s.Progs[0].Ops[0] = Op{Kind: OpStore, Addr: 5, Val: 1}
	s.Progs[1].Ops[0] = Op{Kind: OpLoad, Addr: 5}
	if err := s.Validate(); err != nil {
		t.Fatalf("single-storer scenario rejected: %v", err)
	}

	// Racing sync stores: the supported case.
	s = tinyScenario(1, "DS")
	s.Progs[0].Ops[0] = Op{Kind: OpSyncStore, Addr: 5, Val: 1}
	s.Progs[1].Ops[0] = Op{Kind: OpSyncStore, Addr: 5, Val: 2}
	if err := s.Validate(); err != nil {
		t.Fatalf("racing sync stores rejected: %v", err)
	}
}

func TestFingerprintTracksContent(t *testing.T) {
	a := tinyScenario(1, "DS")
	b := tinyScenario(1, "DS")
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("identical scenarios have different fingerprints")
	}
	b.Seed = 2
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("different scenarios share a fingerprint")
	}

	// Canonical JSON round-trips to an identical fingerprint.
	dec, err := DecodeScenario(a.Canonical())
	if err != nil {
		t.Fatalf("decoding canonical form: %v", err)
	}
	if dec.Fingerprint() != a.Fingerprint() {
		t.Fatal("canonical round-trip changed the fingerprint")
	}
}

// corpusFiles returns the checked-in corpus entries' raw bytes (seed
// input for the decode fuzzers and the replay test).
func corpusFiles(t testing.TB) map[string][]byte {
	dir := filepath.Join("..", "..", "testdata", "corpus")
	des, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading checked-in corpus: %v", err)
	}
	out := map[string][]byte{}
	for _, de := range des {
		if de.IsDir() || !strings.HasSuffix(de.Name(), ".json") {
			continue
		}
		b, err := os.ReadFile(filepath.Join(dir, de.Name()))
		if err != nil {
			t.Fatal(err)
		}
		out[de.Name()] = b
	}
	if len(out) == 0 {
		t.Fatal("checked-in corpus is empty")
	}
	return out
}

// FuzzScenarioDecode hammers the corpus trust boundary: arbitrary bytes
// through the strict entry and scenario decoders must produce an error
// or a valid value, never a panic.
func FuzzScenarioDecode(f *testing.F) {
	for _, b := range corpusFiles(f) {
		f.Add(b)
	}
	f.Add(tinyScenario(1, "M").Canonical())
	f.Add([]byte(`{"schema":"scen.v1"`))
	f.Add([]byte(`{"schema":"scen.v1","kind":"program"}{"trailing":1}`))
	f.Add([]byte(`null`))
	f.Fuzz(func(t *testing.T, data []byte) {
		if s, err := DecodeScenario(data); err == nil {
			if err := s.Validate(); err != nil {
				t.Fatalf("DecodeScenario returned an invalid scenario: %v", err)
			}
		}
		if e, err := DecodeEntry(data); err == nil {
			if err := e.Scenario.Validate(); err != nil {
				t.Fatalf("DecodeEntry returned an invalid scenario: %v", err)
			}
		}
	})
}
