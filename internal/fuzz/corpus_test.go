package fuzz

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestCheckedInCorpusReplaysGreen replays every checked-in corpus entry
// and requires an OK verdict and an exact recorded-result digest match:
// the corpus is executable documentation, and a digest drift means the
// simulator's behavior changed without the corpus being re-recorded.
func TestCheckedInCorpusReplaysGreen(t *testing.T) {
	entries, err := LoadCorpus(filepath.Join("..", "..", "testdata", "corpus"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("checked-in corpus is empty — run `scenfuzz seed-stress` and `scenfuzz seed-kernels`")
	}
	for _, e := range entries {
		e := e
		t.Run(e.Scenario.Fingerprint(), func(t *testing.T) {
			t.Parallel()
			if e.Result.Verdict == "" {
				t.Fatal("checked-in entry has no recorded result")
			}
			res, reproduced := Replay(e)
			if !res.OK() {
				t.Fatalf("%s (%s): verdict %s: %s", e.Name(), e.Scenario, res.Verdict, res.Detail)
			}
			if !reproduced {
				t.Fatalf("%s (%s): recorded digest %s, live %s — re-record or investigate the behavior change",
					e.Name(), e.Scenario, e.Result.Digest(), res.Digest())
			}
		})
	}
}

func TestEntryRoundTripAndNaming(t *testing.T) {
	dir := t.TempDir()
	e := Entry{Note: "round trip", Scenario: tinyScenario(9, "M")}
	path, err := WriteEntry(dir, e)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != e.Name() {
		t.Fatalf("entry written as %s, want content-addressed name %s", filepath.Base(path), e.Name())
	}
	got, err := LoadEntry(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Scenario.Fingerprint() != e.Scenario.Fingerprint() || got.Note != e.Note {
		t.Fatal("entry did not round-trip")
	}

	// A file whose name does not match its scenario fingerprint is a
	// corpus error (edited without re-recording).
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "0000000000000000.json"), b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCorpus(dir); err == nil || !strings.Contains(err.Error(), "named for a different scenario") {
		t.Fatalf("mis-named corpus entry accepted (err=%v)", err)
	}
}

func TestLoadCorpusMissingDirIsEmpty(t *testing.T) {
	entries, err := LoadCorpus(filepath.Join(t.TempDir(), "nope"))
	if err != nil || len(entries) != 0 {
		t.Fatalf("missing corpus dir: entries=%d err=%v, want empty/nil", len(entries), err)
	}
}
