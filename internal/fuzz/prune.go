package fuzz

import "sort"

// Prune selects a minimal-ish subset of entries that still covers the
// union of every entry's recorded hits: classic greedy set cover,
// largest marginal gain first, ties broken by scenario fingerprint so
// the selection is deterministic. Entries recorded with a non-ok verdict
// are always kept (they are reproducers, not coverage carriers).
func Prune(entries []Entry) []Entry {
	var keep, pool []Entry
	want := map[string]bool{}
	for _, e := range entries {
		if e.Result.Verdict != "" && !e.Result.OK() {
			keep = append(keep, e)
			continue
		}
		pool = append(pool, e)
		for _, h := range e.Result.Hits {
			want[h] = true
		}
	}
	sort.Slice(pool, func(i, j int) bool {
		return pool[i].Scenario.Fingerprint() < pool[j].Scenario.Fingerprint()
	})

	covered := map[string]bool{}
	for len(covered) < len(want) {
		best, bestGain := -1, 0
		for i, e := range pool {
			gain := 0
			for _, h := range e.Result.Hits {
				if want[h] && !covered[h] {
					gain++
				}
			}
			if gain > bestGain {
				best, bestGain = i, gain
			}
		}
		if best < 0 {
			break // remaining tuples aren't reachable from this pool
		}
		e := pool[best]
		keep = append(keep, e)
		for _, h := range e.Result.Hits {
			covered[h] = true
		}
		pool = append(pool[:best], pool[best+1:]...)
	}
	sort.Slice(keep, func(i, j int) bool {
		return keep[i].Scenario.Fingerprint() < keep[j].Scenario.Fingerprint()
	})
	return keep
}
