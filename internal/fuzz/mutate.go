package fuzz

import (
	"math/bits"

	"denovosync/internal/kernels"
	"denovosync/internal/proto"
	"denovosync/internal/sim"
)

// Mutator generates and mutates scenarios deterministically: a Mutator
// built from a seed emits one fixed sequence of scenarios regardless of
// host or call site, which is what makes a campaign resumable — on
// resume the same candidates regenerate and their journaled results
// short-circuit execution.
type Mutator struct {
	rng     *sim.RNG
	kernels []string
}

// NewMutator returns a mutator whose output sequence is a pure function
// of seed.
func NewMutator(seed uint64) *Mutator {
	var ids []string
	for _, k := range kernels.All() {
		ids = append(ids, k.ID)
	}
	return &Mutator{
		rng:     sim.NewRNG(seed ^ 0xda3e39cb94b95bdb), // decorrelate from jitter/workload seeds
		kernels: ids,
	}
}

// Choice tables. Arena sizes stay far below the schema ceiling so a
// campaign's simulated footprint stays small; conflict sweeps only need
// (ways+1) x sets lines, which fits in the largest entry for every
// geometry.
var (
	genConfigs = []string{"M", "DS0", "DS", "DSsig"}
	genCores   = []int{2, 2, 4, 4, 8, 16} // skew small: races need few cores
	genWays    = []int{0, 0, 1, 1, 2, 4, 8, 16}
	genKB      = []int{0, 0, 4, 8, 16, 32}
	genArenas  = []int{64, 256, 1024, 4096, 16384}
	genJitters = []sim.Cycle{0, 16, 32, 64, 256, 2000}
	genRounds  = []int{1, 2, 4, 6, 10, 25, 50, 100, 200, 300}
)

func (mu *Mutator) pickInt(xs []int) int             { return xs[mu.rng.Intn(len(xs))] }
func (mu *Mutator) pickStr(xs []string) string       { return xs[mu.rng.Intn(len(xs))] }
func (mu *Mutator) pickCyc(xs []sim.Cycle) sim.Cycle { return xs[mu.rng.Intn(len(xs))] }

// Generate produces a fresh random scenario (no parent). Roughly one in
// four is a kernel scenario; the rest are synthetic programs, the shapes
// the kernel grid cannot express.
func (mu *Mutator) Generate() Scenario {
	if mu.rng.Intn(4) == 0 {
		return mu.generateKernel()
	}
	return mu.generateProgram()
}

func (mu *Mutator) generateKernel() Scenario {
	s := Scenario{
		Schema:    Schema,
		Kind:      KindKernel,
		Config:    mu.pickStr(genConfigs),
		Cores:     16,
		Kernel:    mu.pickStr(mu.kernels),
		Iters:     1 + mu.rng.Intn(8),
		Seed:      mu.rng.Uint64(),
		MaxJitter: mu.pickCyc(genJitters),
	}
	mu.mutateGeometry(&s)
	return s
}

func (mu *Mutator) generateProgram() Scenario {
	s := Scenario{
		Schema:     Schema,
		Kind:       KindProgram,
		Config:     mu.pickStr(genConfigs),
		Cores:      mu.pickInt(genCores),
		ArenaWords: mu.pickInt(genArenas),
		Seed:       mu.rng.Uint64(),
		MaxJitter:  mu.pickCyc(genJitters),
	}
	mu.mutateGeometry(&s)
	nprogs := 1 + mu.rng.Intn(s.Cores)
	for i := 0; i < nprogs; i++ {
		p := Prog{Rounds: mu.pickInt(genRounds)}
		nops := 1 + mu.rng.Intn(10)
		for j := 0; j < nops; j++ {
			p.Ops = append(p.Ops, mu.randOp(&s))
		}
		s.Progs = append(s.Progs, p)
	}
	repairStores(&s)
	mu.clampBudget(&s)
	return s
}

// randOp draws one random operation valid for s's arena and geometry.
func (mu *Mutator) randOp(s *Scenario) Op {
	kinds := []string{
		OpLoad, OpLoad, OpStore, OpSyncLoad, OpSyncStore,
		OpFetchAdd, OpCAS, OpTAS, OpExchange, OpCompute, OpSweep,
	}
	op := Op{Kind: kinds[mu.rng.Intn(len(kinds))]}
	switch op.Kind {
	case OpCompute:
		op.Lo = 0
		op.Hi = mu.pickCyc([]sim.Cycle{50, 100, 200, 1000})
		return op
	case OpSweep:
		return mu.randSweep(s)
	}
	// Contended addresses: skew heavily toward the first line so cores
	// collide; occasionally aim anywhere in the arena.
	if mu.rng.Intn(4) == 0 {
		op.Addr = mu.rng.Intn(s.ArenaWords)
	} else {
		op.Addr = mu.rng.Intn(min(proto.WordsPerLine, s.ArenaWords))
	}
	switch op.Kind {
	case OpStore, OpSyncStore, OpFetchAdd, OpExchange:
		op.Val = uint64(1 + mu.rng.Intn(255))
	case OpCAS:
		op.Old = uint64(mu.rng.Intn(4))
		op.Val = uint64(1 + mu.rng.Intn(255))
	}
	return op
}

// randSweep draws an eviction sweep: half the time a conflict-set sweep
// (stride = set count, ways+1 lines — evicts exactly the contended set),
// otherwise a contiguous capacity thrash.
func (mu *Mutator) randSweep(s *Scenario) Op {
	ways, _, sets := s.Geometry()
	op := Op{Kind: OpSweep, Addr: 0}
	if mu.rng.Intn(2) == 0 {
		op.Stride = sets
		op.Lines = ways + 1 + mu.rng.Intn(2)
	} else {
		op.Stride = 1
		op.Lines = mu.pickInt([]int{8, 32, 128, 512})
	}
	// Clamp to the arena.
	maxLines := (s.ArenaWords/proto.WordsPerLine-op.Addr/proto.WordsPerLine-1)/op.Stride + 1
	if maxLines < 1 {
		return Op{Kind: OpLoad, Addr: 0}
	}
	if op.Lines > maxLines {
		op.Lines = maxLines
	}
	if op.Lines > MaxSweepLines {
		op.Lines = MaxSweepLines
	}
	if op.Stride > MaxSweepLines {
		return Op{Kind: OpLoad, Addr: 0}
	}
	return op
}

// mutateGeometry rerolls the cache-geometry axis, rejecting combinations
// where ways exceed lines (e.g. 16 ways in a 4 KiB cache would leave no
// sets).
func (mu *Mutator) mutateGeometry(s *Scenario) {
	for {
		s.L1Ways = mu.pickInt(genWays)
		s.L1KB = mu.pickInt(genKB)
		ways, size, _ := s.Geometry()
		if ways <= size/proto.LineBytes {
			return
		}
	}
}

// Candidate draws the next campaign candidate: a mutation of a pool
// scenario, or a fresh generation when the pool is empty (and 1 in 8
// draws regardless, keeping exploration alive once the pool saturates).
func (mu *Mutator) Candidate(pool []Scenario) Scenario {
	if len(pool) == 0 || mu.rng.Intn(8) == 0 {
		return mu.Generate()
	}
	return mu.Mutate(pool[mu.rng.Intn(len(pool))])
}

// Mutate returns a mutated deep copy of s. The result always validates:
// every mutation preserves the schema bounds by construction, and a
// final clamp pass repairs op budgets. The parent is never modified.
func (mu *Mutator) Mutate(s Scenario) Scenario {
	out := clone(s)
	if out.Kind == KindKernel {
		mu.mutateKernel(&out)
	} else {
		mu.mutateProgram(&out)
	}
	if err := out.Validate(); err != nil {
		// Defense in depth: a mutation that somehow escaped the bounds is
		// discarded in favor of the (valid) parent copy.
		return clone(s)
	}
	return out
}

func (mu *Mutator) mutateKernel(s *Scenario) {
	switch mu.rng.Intn(6) {
	case 0:
		s.Kernel = mu.pickStr(mu.kernels)
	case 1:
		s.Config = mu.pickStr(genConfigs)
	case 2:
		s.Iters = 1 + mu.rng.Intn(8)
	case 3:
		s.Seed = mu.rng.Uint64()
	case 4:
		mu.mutateJitter(s)
	case 5:
		mu.mutateGeometry(s)
	}
}

func (mu *Mutator) mutateProgram(s *Scenario) {
	switch mu.rng.Intn(11) {
	case 0:
		s.Seed = mu.rng.Uint64()
	case 1:
		mu.mutateJitter(s)
	case 2:
		mu.mutateGeometry(s)
		mu.repairSweeps(s)
	case 3:
		s.Config = mu.pickStr(genConfigs)
	case 4: // reshape a core's schedule: swap two ops (interleaving axis)
		p := mu.pickProg(s)
		if len(p.Ops) >= 2 {
			i, j := mu.rng.Intn(len(p.Ops)), mu.rng.Intn(len(p.Ops))
			p.Ops[i], p.Ops[j] = p.Ops[j], p.Ops[i]
		}
	case 5: // toggle a sync site: ld <-> syld, st <-> syst
		p := mu.pickProg(s)
		if len(p.Ops) == 0 {
			return
		}
		i := mu.rng.Intn(len(p.Ops))
		switch p.Ops[i].Kind {
		case OpLoad:
			p.Ops[i].Kind = OpSyncLoad
		case OpSyncLoad:
			p.Ops[i].Kind = OpLoad
		case OpStore:
			p.Ops[i].Kind = OpSyncStore
		case OpSyncStore:
			p.Ops[i].Kind = OpStore
		default:
			p.Ops[i] = mu.randOp(s)
		}
	case 6: // insert a random op
		p := mu.pickProg(s)
		if len(p.Ops) < MaxProgOps {
			i := mu.rng.Intn(len(p.Ops) + 1)
			p.Ops = append(p.Ops[:i], append([]Op{mu.randOp(s)}, p.Ops[i:]...)...)
			if p.Rounds == 0 {
				p.Rounds = 1 // an idle placeholder core just gained work
			}
		}
	case 7: // delete an op
		p := mu.pickProg(s)
		if len(p.Ops) >= 2 {
			i := mu.rng.Intn(len(p.Ops))
			p.Ops = append(p.Ops[:i], p.Ops[i+1:]...)
		}
	case 8: // change a core's round count
		p := mu.pickProg(s)
		p.Rounds = mu.pickInt(genRounds)
	case 9: // add or drop a core's program
		if len(s.Progs) < s.Cores && mu.rng.Intn(2) == 0 {
			src := s.Progs[mu.rng.Intn(len(s.Progs))]
			s.Progs = append(s.Progs, cloneProg(src))
		} else if len(s.Progs) >= 2 {
			i := mu.rng.Intn(len(s.Progs))
			s.Progs = append(s.Progs[:i], s.Progs[i+1:]...)
		}
	case 10: // eviction-race shaper (geometry + blocking-sync aware)
		mu.shapeEvictionRace(s)
	}
	repairStores(s)
	mu.clampBudget(s)
}

// shapeEvictionRace rewrites a scenario toward the writeback-vs-
// registration races only reachable with a direct-mapped L1: it pins
// ways to 1, then plants a same-set conflicting load immediately after a
// blocking sync access, so the line the sync op just registered is
// evicted while its ack or writeback is still in flight (the shape
// behind the denovo.Registry roL2 recvWB holdout tuple).
func (mu *Mutator) shapeEvictionRace(s *Scenario) {
	s.L1Ways = 1
	mu.repairSweeps(s) // strides tuned to the old set count are dead now
	if s.MaxJitter == 0 {
		s.MaxJitter = mu.pickCyc([]sim.Cycle{256, 2000}) // the race needs in-flight messages to linger
	}
	_, _, sets := s.Geometry()
	p := mu.pickProg(s)
	if len(p.Ops)+2 > MaxProgOps {
		return
	}
	// The conflict partner: a blocking sync op already in the program, or
	// a freshly planted sync load on the contended first line.
	idx := -1
	var syncs []int
	for i, op := range p.Ops {
		switch op.Kind {
		case OpSyncLoad, OpSyncStore, OpFetchAdd, OpCAS, OpTAS, OpExchange:
			syncs = append(syncs, i)
		}
	}
	if len(syncs) > 0 {
		idx = syncs[mu.rng.Intn(len(syncs))]
	} else {
		p.Ops = append([]Op{{Kind: OpSyncLoad, Addr: 0}}, p.Ops...)
		idx = 0
	}
	// Same set, different tag: one load evicts the just-registered line.
	conflict := p.Ops[idx].Addr + sets*proto.WordsPerLine
	if conflict >= MaxArenaWords {
		return
	}
	if conflict >= s.ArenaWords {
		s.ArenaWords = conflict + 1
	}
	rest := append([]Op{{Kind: OpLoad, Addr: conflict}}, p.Ops[idx+1:]...)
	p.Ops = append(p.Ops[:idx+1], rest...)
	// The window is a handful of cycles per registration; give the shaped
	// core enough rounds to roll the dice, and a second core racing the
	// same schedule so a re-registration can overlap the eviction's
	// writeback (the two-racer structure of the retired wbRace battery).
	if p.Rounds < 100 {
		p.Rounds = mu.pickInt([]int{100, 200, 300})
	}
	if len(s.Progs) < s.Cores {
		s.Progs = append(s.Progs, cloneProg(*p))
	}
}

func (mu *Mutator) mutateJitter(s *Scenario) {
	switch mu.rng.Intn(3) {
	case 0:
		s.MaxJitter = mu.pickCyc(genJitters)
	case 1:
		s.JitterLimit = nil
	case 2:
		lim := mu.rng.Intn(10_000)
		s.JitterLimit = &lim
	}
}

// pickProg returns a pointer to a random program of s.
func (mu *Mutator) pickProg(s *Scenario) *Prog {
	return &s.Progs[mu.rng.Intn(len(s.Progs))]
}

// repairStores restores the DeNovo data-access contract after a mutation
// (see validateStoreOwnership): every word stored by more than one prog
// has its plain stores promoted to sync stores. Promotion (rather than
// rejection) keeps racy mutations productive — the race survives, it just
// moves to the sync path, where it is the paper's supported case.
func repairStores(s *Scenario) {
	storers := map[int]uint32{}
	for ci, p := range s.Progs {
		for _, op := range p.Ops {
			if op.stores() {
				storers[op.Addr] |= 1 << ci
			}
		}
	}
	for pi := range s.Progs {
		for oi, op := range s.Progs[pi].Ops {
			if op.Kind == OpStore && bits.OnesCount32(storers[op.Addr]) > 1 {
				s.Progs[pi].Ops[oi].Kind = OpSyncStore
			}
		}
	}
}

// repairSweeps rebuilds conflict-set sweeps after a geometry change: a
// stride tuned to the old set count no longer evicts anything useful,
// and may now overrun the arena.
func (mu *Mutator) repairSweeps(s *Scenario) {
	for pi := range s.Progs {
		for oi, op := range s.Progs[pi].Ops {
			if op.Kind == OpSweep && op.lastWord() >= s.ArenaWords {
				s.Progs[pi].Ops[oi] = mu.randSweep(s)
			}
		}
	}
}

// clampBudget scales round counts down until the scenario's total op
// budget fits, so no mutation can produce an over-budget candidate.
func (mu *Mutator) clampBudget(s *Scenario) {
	const target = 400_000 // well under MaxTotalOps: campaign throughput
	for {
		total := 0
		for _, p := range s.Progs {
			w := 0
			for _, op := range p.Ops {
				w += op.weight()
			}
			total += w * p.Rounds
		}
		if total <= target {
			return
		}
		for pi := range s.Progs {
			if r := s.Progs[pi].Rounds / 2; r >= 1 {
				s.Progs[pi].Rounds = r
			}
		}
		// All rounds at 1 and still over budget: drop whole sweeps.
		if allOne(s.Progs) && total > target {
			for pi := range s.Progs {
				for oi, op := range s.Progs[pi].Ops {
					if op.Kind == OpSweep && op.Lines > 64 {
						s.Progs[pi].Ops[oi].Lines = 64
					}
				}
			}
			return
		}
	}
}

func allOne(ps []Prog) bool {
	for _, p := range ps {
		if p.Rounds > 1 {
			return false
		}
	}
	return true
}

// clone deep-copies a scenario (Progs, Ops, JitterLimit).
func clone(s Scenario) Scenario {
	out := s
	if s.JitterLimit != nil {
		lim := *s.JitterLimit
		out.JitterLimit = &lim
	}
	out.Progs = nil
	for _, p := range s.Progs {
		out.Progs = append(out.Progs, cloneProg(p))
	}
	return out
}

func cloneProg(p Prog) Prog {
	return Prog{Rounds: p.Rounds, Ops: append([]Op(nil), p.Ops...)}
}
