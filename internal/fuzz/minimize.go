package fuzz

import (
	"encoding/json"
	"fmt"
	"os"

	"denovosync/internal/chaos"
	"denovosync/internal/kernels"
)

// MinTrial records one minimization probe.
type MinTrial struct {
	Work    int    `json:"work"`  // rounds cap (programs) or iters (kernels)
	Limit   int    `json:"limit"` // jitter message limit; -1 = unlimited
	Verdict string `json:"verdict"`
}

// Minimized is the replayable reduced failure the minimizer emits:
// `scenfuzz replay` on the embedded scenario re-derives the identical
// verdict.
type Minimized struct {
	Scenario Scenario   `json:"scenario"`
	Verdict  string     `json:"verdict"`
	Detail   string     `json:"detail,omitempty"`
	Messages int        `json:"messages"`
	Trials   []MinTrial `json:"trials,omitempty"`
}

// Minimize reduces a failing scenario along the same two axes as the
// chaos shrinker, via the shared chaos.BisectMin kernel: first the
// workload prefix (a global cap on per-core rounds, or kernel
// iterations), then the perturbation prefix (the jitter message limit).
// run is the executor (normally Execute; tests substitute predicates).
func Minimize(s Scenario, run func(Scenario) Result) (*Minimized, error) {
	r0 := run(s)
	if r0.OK() {
		return nil, fmt.Errorf("fuzz: %s does not fail — nothing to minimize", s.String())
	}
	target := r0.Verdict
	out := &Minimized{}
	probe := func(cand Scenario, work int) bool {
		r := run(cand)
		out.Trials = append(out.Trials, MinTrial{Work: work, Limit: jitterLimit(cand.JitterLimit), Verdict: r.Verdict})
		return r.Verdict == target
	}

	// Phase 1: smallest workload prefix that still fails.
	hiWork := s.workUpperBound()
	if hiWork > 1 {
		if best, ok := chaos.BisectMin(1, hiWork, func(mid int) bool {
			return probe(s.capWork(mid), mid)
		}); ok {
			s = s.capWork(best)
		}
	}

	// Phase 2: smallest jitter prefix that still fails. The upper bound
	// is the failing run's message count; converging to 0 proves jitter
	// is irrelevant to the failure.
	r1 := run(s)
	if r1.Verdict != target {
		return nil, fmt.Errorf("fuzz: minimize lost the failure re-running %s (got %q, want %q)", s.String(), r1.Verdict, target)
	}
	hiLimit := r1.Messages
	if cur := jitterLimit(s.JitterLimit); cur >= 0 && cur < hiLimit {
		hiLimit = cur
	}
	if best, ok := chaos.BisectMin(0, hiLimit, func(mid int) bool {
		cand := clone(s)
		lim := mid
		cand.JitterLimit = &lim
		return probe(cand, s.workUpperBound())
	}); ok {
		lim := best
		s = clone(s)
		s.JitterLimit = &lim
	}

	// Final verification of the reduced scenario.
	rf := run(s)
	if rf.Verdict != target {
		return nil, fmt.Errorf("fuzz: minimized scenario %s does not reproduce (got %q, want %q)", s.String(), rf.Verdict, target)
	}
	out.Scenario = s
	out.Verdict = rf.Verdict
	out.Detail = rf.Detail
	out.Messages = rf.Messages
	return out, nil
}

// workUpperBound is the phase-1 bisection ceiling: the largest per-core
// round count (programs) or the effective iteration count (kernels).
func (s Scenario) workUpperBound() int {
	if s.Kind == KindKernel {
		if s.Iters > 0 {
			return s.Iters
		}
		if k, ok := kernels.ByID(s.Kernel); ok {
			return k.DefaultIters
		}
		return 1
	}
	hi := 0
	for _, p := range s.Progs {
		if p.Rounds > hi {
			hi = p.Rounds
		}
	}
	return hi
}

// capWork returns a copy of s with its workload prefix capped at v:
// kernel iterations, or every program's rounds clamped to min(orig, v).
// Relative round ratios below the cap are preserved — a reader thread
// doing 3x the writer's rounds keeps doing proportionally more until the
// cap bites it too.
func (s Scenario) capWork(v int) Scenario {
	out := clone(s)
	if out.Kind == KindKernel {
		out.Iters = v
		return out
	}
	for i := range out.Progs {
		if out.Progs[i].Rounds > v {
			out.Progs[i].Rounds = v
		}
	}
	return out
}

// WriteMinimized writes the reduced reproducer as indented JSON.
func WriteMinimized(path string, m *Minimized) error {
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("fuzz: marshaling minimized repro: %w", err)
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
