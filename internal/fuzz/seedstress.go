package fuzz

import (
	"fmt"

	"denovosync/internal/alloc"
	"denovosync/internal/machine"
	"denovosync/internal/proto"
)

// This file translates cmd/protocov's original hand-pinned stress
// batteries into scenario form, address- and RNG-draw-exactly: the same
// allocation order against a fresh alloc.Space (so the same absolute
// addresses), the same per-thread op sequences (so the same workload-RNG
// draw order), and the same jitter policy. A translated scenario
// therefore hits the identical atlas tuples as the Go function it
// replaces — which is what lets the checked-in corpus take over the
// coverage gate from compiled-in workloads.
//
// Pinned seeds, copied from the retired battery: the windows these
// batteries open are narrow, and the seeds were scanned to hit them.
// The schedule is deterministic, so they keep hitting.
var (
	stressSeeds = []uint64{1, 7, 13}
	raceSeeds   = []uint64{3, 5, 11, 17, 29, 37, 41}
	wbRaceSeeds = []uint64{21, 26, 42, 59, 72}
)

const (
	stressRounds = 6
	// thrashLines of distinct lines exceed the 32 KiB L1, guaranteeing
	// the contended line is a capacity victim every sweep.
	thrashLines  = 768
	raceRounds   = 300
	wbRaceRounds = 200
)

// stressConfigs mirrors the retired battery's sweep: every battery ran
// under all four protocol configs.
var stressConfigs = []string{"M", "DS0", "DS", "DSsig"}

// StressSeeds returns the full translated battery as corpus entries
// (Result unrecorded — `scenfuzz seed-stress` executes each scenario and
// records it before writing).
func StressSeeds() []Entry {
	var out []Entry
	for _, cfg := range stressConfigs {
		for _, seed := range stressSeeds {
			out = append(out, Entry{
				Note:     fmt.Sprintf("seed-stress: capacity-thrash eviction race (ex-protocov stressRun), %s seed %d", cfg, seed),
				Scenario: stressScenario(cfg, seed),
			})
		}
		for _, seed := range raceSeeds {
			out = append(out, Entry{
				Note:     fmt.Sprintf("seed-stress: conflict-set eviction race (ex-protocov raceRun; reproducer class for the PR5 MESI stale-exclusive-install and DeNovo parking-deadlock bugs), %s seed %d", cfg, seed),
				Scenario: raceScenario(cfg, seed),
			})
		}
		for _, seed := range wbRaceSeeds {
			out = append(out, Entry{
				Note:     fmt.Sprintf("seed-stress: direct-mapped SyncLoad-vs-writeback race (ex-protocov wbRace; covers denovo.Registry roL2 recvWB), %s seed %d", cfg, seed),
				Scenario: wbRaceScenario(cfg, seed),
			})
		}
	}
	out = append(out, Entry{
		Note:     "seed-stress: MESI stale-Put-after-reacquire regression (scenfuzz campaign find, minimized; before the grant-epoch fix in Directory.recvPut this raised a SWMR violation — two exclusive owners)",
		Scenario: putRaceScenario(),
	})
	return out
}

// layout replays an allocation sequence against a fresh space and
// returns each allocation's word offset from the first (the scenario
// arena base), plus the total arena size covering them all. The runner
// performs one AllocAligned of the whole arena, and because every
// original allocation was line-aligned, bump allocation lands each block
// at exactly these offsets.
func layout(wordsPerBlock ...int) (offsets []int, arenaWords int) {
	s := alloc.New()
	var first proto.Addr
	for i, words := range wordsPerBlock {
		a := s.AllocAligned(words, 0)
		if i == 0 {
			first = a
		}
		offsets = append(offsets, int(a-first)/proto.WordBytes)
		arenaWords = int(a-first)/proto.WordBytes + words
	}
	return offsets, arenaWords
}

// stressScenario: cores 0 and 1 register a shared line and immediately
// thrash it out (writeback/Put in flight while forwards race in); core 2
// reads the line (data and sync) so forwards chase the evicted owner;
// core 3 keeps a private read-only line (E in MESI) and evicts it.
func stressScenario(config string, seed uint64) Scenario {
	offs, arena := layout(proto.WordsPerLine, proto.WordsPerLine, thrashLines*proto.WordsPerLine)
	a, b, thrash := offs[0], offs[1], offs[2]
	sweep := Op{Kind: OpSweep, Addr: thrash, Lines: thrashLines, Stride: 1}

	writer := func(storeB bool) Prog {
		ops := []Op{{Kind: OpSyncStore, Addr: a, Val: 1}}
		if storeB {
			ops = append(ops, Op{Kind: OpStore, Addr: a + 1, Val: 1})
		}
		ops = append(ops,
			// Word a+3 is never stored: this data read fills a line whose
			// word 0 is still registered.
			Op{Kind: OpLoad, Addr: a + 3},
			sweep,
			Op{Kind: OpLoad, Addr: a},
			Op{Kind: OpFetchAdd, Addr: a + 2, Val: 1},
			Op{Kind: OpCompute, Lo: 20, Hi: 300},
		)
		return Prog{Rounds: stressRounds, Ops: ops}
	}
	return Scenario{
		Schema: Schema, Kind: KindProgram, Config: config,
		Cores: 16, ArenaWords: arena,
		Seed: seed, MaxJitter: 32,
		Progs: []Prog{
			writer(false),
			writer(true),
			{Rounds: stressRounds * 3, Ops: []Op{
				{Kind: OpLoad, Addr: a},
				{Kind: OpCompute, Lo: 10, Hi: 150},
				{Kind: OpSyncLoad, Addr: a},
				{Kind: OpLoad, Addr: a + 1},
			}},
			{Rounds: stressRounds, Ops: []Op{
				{Kind: OpLoad, Addr: b},
				sweep,
			}},
		},
	}
}

// raceScenario: the sweep touches only lines that map to the contended
// line's cache set, so a register→evict cycle takes ~1k cycles instead
// of a full-cache sweep, and a large jitter bound (still per-class FIFO)
// lets a writeback or Put linger in the mesh while requests from other
// cores overtake it on different message classes.
func raceScenario(config string, seed uint64) Scenario {
	p := machine.Params16()
	sets := p.L1Size / proto.LineBytes / p.L1Ways
	offs, arena := layout(proto.WordsPerLine, (p.L1Ways+2)*sets*proto.WordsPerLine)
	a, conflict := offs[0], offs[1]
	// Offset the conflict rows so every row's line lands in a's set. The
	// set of an arena word offset is invariant under the arena base
	// because the base is line-aligned and the original computed the same
	// offset from absolute addresses.
	setOfWord := func(w int) int { return (w / proto.WordsPerLine) & (sets - 1) }
	off := ((setOfWord(a) - setOfWord(conflict)) & (sets - 1)) * proto.WordsPerLine
	sweep := Op{Kind: OpSweep, Addr: conflict + off, Lines: p.L1Ways + 1, Stride: sets}

	writer := Prog{Rounds: raceRounds, Ops: []Op{
		{Kind: OpSyncStore, Addr: a, Val: 1},
		sweep,
		{Kind: OpLoad, Addr: a},
		{Kind: OpCompute, Lo: 0, Hi: 100},
	}}
	return Scenario{
		Schema: Schema, Kind: KindProgram, Config: config,
		Cores: 16, ArenaWords: arena,
		Seed: seed, MaxJitter: 2000,
		Progs: []Prog{
			writer,
			cloneProg(writer),
			{Rounds: raceRounds * 2, Ops: []Op{
				{Kind: OpLoad, Addr: a},
				{Kind: OpCompute, Lo: 0, Hi: 50},
				{Kind: OpLoad, Addr: a},
				{Kind: OpSyncLoad, Addr: a},
			}},
		},
	}
}

// putRaceScenario is the shrinker's minimization of a scenfuzz campaign
// finding, kept verbatim (fuzzer-shaped, not hand-designed): under a
// fully-associative 4 KiB L1 (64 lines) the 17/18-line stride-4 sweeps
// evict and immediately re-request the same lines, so an owner's Put
// (jittered up to 2000 cycles on the writeback class) can land after the
// directory has re-granted that same core ownership. The directory then
// mistook the stale Put for a current one, cleared the owner, and the
// next exclusive grant minted a second M/E copy. Fixed by per-grant
// epochs (Directory.recvPut); this entry pins the window open as a
// regression.
func putRaceScenario() Scenario {
	limit := 1947
	return Scenario{
		Schema: Schema, Kind: KindProgram, Config: "M",
		Cores: 16, L1Ways: 16, L1KB: 4, ArenaWords: 4096,
		Seed: 4234423502490693000, MaxJitter: 2000, JitterLimit: &limit,
		Progs: []Prog{
			{Rounds: 18, Ops: []Op{
				{Kind: OpLoad, Addr: 12},
				{Kind: OpCAS, Addr: 922, Val: 252, Old: 2},
				{Kind: OpSyncLoad, Addr: 13},
				{Kind: OpCompute, Hi: 50},
				{Kind: OpCompute, Hi: 1000},
				{Kind: OpExchange, Addr: 1101, Val: 157},
				{Kind: OpSweep, Addr: 0, Lines: 18, Stride: 4},
				{Kind: OpCAS, Addr: 7, Val: 64, Old: 1},
			}},
			{Rounds: 6, Ops: []Op{
				{Kind: OpSyncLoad, Addr: 1119},
				{Kind: OpCompute, Hi: 50},
				{Kind: OpTAS, Addr: 15},
				{Kind: OpLoad, Addr: 15},
				{Kind: OpSyncStore, Addr: 6, Val: 181},
				{Kind: OpSyncLoad, Addr: 14},
			}},
			{Rounds: 2, Ops: []Op{
				{Kind: OpTAS, Addr: 4},
				{Kind: OpLoad, Addr: 3104},
				{Kind: OpLoad, Addr: 4},
				{Kind: OpCompute, Hi: 200},
				{Kind: OpTAS, Addr: 4},
				{Kind: OpExchange, Addr: 2, Val: 82},
				{Kind: OpLoad, Addr: 1710},
				{Kind: OpExchange, Addr: 5, Val: 70},
				{Kind: OpSyncStore, Addr: 12, Val: 103},
			}},
			{Rounds: 18, Ops: []Op{
				{Kind: OpSyncStore, Addr: 0, Val: 119},
				{Kind: OpSweep, Addr: 0, Lines: 17, Stride: 4},
				{Kind: OpStore, Addr: 9, Val: 90},
				{Kind: OpSyncStore, Addr: 12, Val: 24},
				{Kind: OpTAS, Addr: 15},
				{Kind: OpSweep, Addr: 0, Lines: 17, Stride: 4},
				{Kind: OpSyncStore, Addr: 4, Val: 106},
			}},
		},
	}
}

// wbRaceScenario targets the registry's rarest transition: a writeback
// arriving at a word the registry already owns (roL2 recvWB). The L1 is
// direct-mapped so evicting the contended line costs exactly one
// conflicting load, and the registering access is a SyncLoad, which
// blocks until its ack — see the retired wbRace's comment for the full
// mechanics.
func wbRaceScenario(config string, seed uint64) Scenario {
	p := machine.Params16()
	p.L1Ways = 1
	sets := p.L1Size / proto.LineBytes / p.L1Ways
	_, arena := layout(proto.WordsPerLine)
	a := 0
	// Direct-mapped conflict: same set, different tag. b was never
	// allocated in the original; the arena must still reach it.
	b := a + sets*proto.WordsPerLine
	if b >= arena {
		arena = b + 1
	}

	racer := Prog{Rounds: wbRaceRounds, Ops: []Op{
		{Kind: OpSyncLoad, Addr: a},
		{Kind: OpLoad, Addr: b},
		{Kind: OpCompute, Lo: 0, Hi: 200},
	}}
	return Scenario{
		Schema: Schema, Kind: KindProgram, Config: config,
		Cores: 16, L1Ways: 1, ArenaWords: arena,
		Seed: seed, MaxJitter: 2000,
		Progs: []Prog{racer, cloneProg(racer)},
	}
}
