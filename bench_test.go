package denovosync_test

// One benchmark per table/figure of the paper's evaluation (§7). Each
// bench regenerates its figure's data at a reduced workload scale (the
// full-scale regeneration is `go run ./cmd/paperbench`) and reports the
// paper's two headline metrics as custom benchmark outputs:
//
//	DS0-exec-vs-MESI, DS-exec-vs-MESI       (geomean execution-time ratio)
//	DS0-traffic-vs-MESI, DS-traffic-vs-MESI (geomean network-traffic ratio)
//
// Run with: go test -bench=. -benchmem

import (
	"testing"

	"denovosync"
)

// benchOptions is the reduced scale used inside testing.B loops.
var benchOptions = denovosync.FigureOptions{Scale: 10}

func reportFigure(b *testing.B, f *denovosync.Figure, withDS0 bool) {
	b.Helper()
	if withDS0 {
		e0, t0 := f.GeoMeanVsMESI(denovosync.DeNovoSync0)
		b.ReportMetric(e0, "DS0-exec-vs-MESI")
		b.ReportMetric(t0, "DS0-traffic-vs-MESI")
	}
	e, tr := f.GeoMeanVsMESI(denovosync.DeNovoSync)
	b.ReportMetric(e, "DS-exec-vs-MESI")
	b.ReportMetric(tr, "DS-traffic-vs-MESI")
}

// BenchmarkTable1 measures raw simulator throughput on the Table 1
// configurations: a cold-to-hot private-data sweep per core (the machine
// model itself, no protocol contention).
func BenchmarkTable1(b *testing.B) {
	for _, cores := range []int{16, 64} {
		cores := cores
		b.Run(map[int]string{16: "16c", 64: "64c"}[cores], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				space := denovosync.NewSpace()
				region := space.Region("priv")
				var params denovosync.Params
				if cores == 16 {
					params = denovosync.Params16()
				} else {
					params = denovosync.Params64()
				}
				bases := make([]denovosync.Addr, cores)
				for j := range bases {
					bases[j] = space.AllocAligned(64, region)
				}
				m := denovosync.NewMachine(params, denovosync.DeNovoSync, space)
				_, err := m.Run("table1", func(t *denovosync.Thread) {
					base := bases[t.ID]
					for w := 0; w < 64; w++ {
						t.Store(base+denovosync.Addr(w*4), uint64(w))
					}
					t.Fence()
					for w := 0; w < 64; w++ {
						_ = t.Load(base + denovosync.Addr(w*4))
					}
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig3TATASLocks16 regenerates Figure 3 (a,b): TATAS kernels, 16 cores.
func BenchmarkFig3TATASLocks16(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := denovosync.Fig3(16, benchOptions)
		if err != nil {
			b.Fatal(err)
		}
		reportFigure(b, f, true)
	}
}

// BenchmarkFig3TATASLocks64 regenerates Figure 3 (c,d): TATAS kernels, 64 cores.
func BenchmarkFig3TATASLocks64(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := denovosync.Fig3(64, benchOptions)
		if err != nil {
			b.Fatal(err)
		}
		reportFigure(b, f, true)
	}
}

// BenchmarkFig4ArrayLocks16 regenerates Figure 4 (a,b): array locks, 16 cores.
func BenchmarkFig4ArrayLocks16(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := denovosync.Fig4(16, benchOptions)
		if err != nil {
			b.Fatal(err)
		}
		reportFigure(b, f, true)
	}
}

// BenchmarkFig4ArrayLocks64 regenerates Figure 4 (c,d): array locks, 64 cores.
func BenchmarkFig4ArrayLocks64(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := denovosync.Fig4(64, benchOptions)
		if err != nil {
			b.Fatal(err)
		}
		reportFigure(b, f, true)
	}
}

// BenchmarkFig5NonBlocking16 regenerates Figure 5 (a,b): non-blocking
// algorithms, 16 cores.
func BenchmarkFig5NonBlocking16(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := denovosync.Fig5(16, benchOptions)
		if err != nil {
			b.Fatal(err)
		}
		reportFigure(b, f, true)
	}
}

// BenchmarkFig5NonBlocking64 regenerates Figure 5 (c,d): non-blocking
// algorithms, 64 cores — the high-contention case where DeNovoSync0's
// registration ping-pong appears and DeNovoSync's backoff recovers it.
func BenchmarkFig5NonBlocking64(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := denovosync.Fig5(64, benchOptions)
		if err != nil {
			b.Fatal(err)
		}
		reportFigure(b, f, true)
	}
}

// BenchmarkFig6Barriers16 regenerates Figure 6 (a,b): barriers, 16 cores.
func BenchmarkFig6Barriers16(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := denovosync.Fig6(16, benchOptions)
		if err != nil {
			b.Fatal(err)
		}
		reportFigure(b, f, true)
	}
}

// BenchmarkFig6Barriers64 regenerates Figure 6 (c,d): barriers, 64 cores.
func BenchmarkFig6Barriers64(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := denovosync.Fig6(64, benchOptions)
		if err != nil {
			b.Fatal(err)
		}
		reportFigure(b, f, true)
	}
}

// BenchmarkFig7Applications regenerates Figure 7 (a,b): the 13
// application models on MESI vs DeNovoSync.
func BenchmarkFig7Applications(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := denovosync.Fig7(benchOptions)
		if err != nil {
			b.Fatal(err)
		}
		reportFigure(b, f, false)
	}
}

// BenchmarkAblationSWBackoff regenerates the §7.1.1 software-backoff
// sensitivity study (16 cores for bench brevity).
func BenchmarkAblationSWBackoff(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := denovosync.AblationSWBackoff(16, benchOptions)
		if err != nil {
			b.Fatal(err)
		}
		reportFigure(b, f, true)
	}
}

// BenchmarkAblationPadding regenerates the §7.1.1 lock-padding study.
func BenchmarkAblationPadding(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := denovosync.AblationPadding(16, benchOptions)
		if err != nil {
			b.Fatal(err)
		}
		reportFigure(b, f, true)
	}
}

// BenchmarkAblationEqChecks regenerates the §7.1.3 equality-check study.
func BenchmarkAblationEqChecks(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := denovosync.AblationEqChecks(16, benchOptions)
		if err != nil {
			b.Fatal(err)
		}
		reportFigure(b, f, true)
	}
}

// BenchmarkAblationBackoffParams sweeps the hardware-backoff design
// parameters (counter width, default increment) on the M-S queue.
func BenchmarkAblationBackoffParams(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := denovosync.AblationBackoffParams(16, benchOptions); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineThroughput measures raw event-dispatch rate — the
// simulator substrate itself.
func BenchmarkEngineThroughput(b *testing.B) {
	space := denovosync.NewSpace()
	ctr := space.AllocPadded(space.Region("sync"))
	m := denovosync.NewMachine(denovosync.Params16(), denovosync.DeNovoSync, space)
	b.ResetTimer()
	done := false
	_, err := m.Run("engine", func(t *denovosync.Thread) {
		if t.ID != 0 {
			return
		}
		for i := 0; i < b.N; i++ {
			t.FetchAdd(ctr, 1)
		}
		done = true
	})
	if err != nil || !done {
		b.Fatal(err)
	}
}
