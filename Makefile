GO ?= go

# `make` = the full CI gate: static checks, build, race-enabled tests,
# and the reduced-scale golden-figure check.
.PHONY: all
all: check

.PHONY: check
check: vet lint build race golden

.PHONY: vet
vet:
	$(GO) vet ./...

# lint runs the repo's own analyzers (internal/lint): exhauststate,
# determinism, threaddiscipline, cyclehygiene. Suppress a finding at the
# site with `//simlint:allow <analyzer>: <reason>`; see README.
.PHONY: lint
lint:
	$(GO) run ./cmd/simlint ./...

.PHONY: build
build:
	$(GO) build ./...

.PHONY: test
test:
	$(GO) test ./...

.PHONY: race
race:
	$(GO) test -race ./...

# Golden checks: figure CSVs (Figs. 3-7 at reduced scale) and the
# cycle-exact determinism fingerprints. Regenerate deliberately with
# `make golden-update` after an intentional simulator change.
.PHONY: golden
golden:
	$(GO) test ./internal/harness -run TestGoldenFigures -count=1
	$(GO) test ./internal/machine -run 'TestDeterminism|TestBatchingMatchesEager' -count=1

.PHONY: golden-update
golden-update:
	$(GO) test ./internal/harness -run TestGoldenFigures -count=1 -update
	$(GO) test ./internal/machine -run TestDeterminismGolden -count=1 -update

# Engine + handshake micro-benchmarks (compare against BENCH_baseline.json
# on the same machine; see EXPERIMENTS.md, "Benchmark workflow").
.PHONY: bench
bench:
	$(GO) test ./internal/sim ./internal/cpu -run '^$$' -bench 'BenchmarkEngine|BenchmarkHandshake' -benchmem
	$(GO) test . -run '^$$' -bench BenchmarkEngineThroughput -benchmem

# bench-baseline prints the numbers in BENCH_baseline.json format worth
# pasting in after a deliberate engine change (higher -count for stability).
.PHONY: bench-baseline
bench-baseline:
	$(GO) test ./internal/sim ./internal/cpu -run '^$$' -bench 'BenchmarkEngine|BenchmarkHandshake' -count=5
	$(GO) test . -run '^$$' -bench BenchmarkEngineThroughput -count=5

# Short fuzzing passes over the DeNovoSync backoff-counter and MSHR
# parking properties (seed corpus always runs under `make test`).
.PHONY: fuzz
fuzz:
	$(GO) test ./internal/denovo -fuzz FuzzBackoffCounterWrap -fuzztime 30s
	$(GO) test ./internal/denovo -fuzz FuzzMSHRSyncParking -fuzztime 30s
