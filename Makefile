GO ?= go

# `make` = the full CI gate: static checks, build, race-enabled tests,
# and the reduced-scale golden-figure check.
.PHONY: all
all: check

.PHONY: check
check: vet lint build race golden atlas-check isolate-check liveness-check fuzz-smoke pdes-smoke fabric-smoke

.PHONY: vet
vet:
	$(GO) vet ./...

# lint runs the repo's own analyzers (internal/lint): exhauststate,
# determinism, threaddiscipline, cyclehygiene, observerpurity,
# atlasdrift. Suppress a finding at the site with
# `//simlint:allow <analyzer>: <reason>`; see README.
.PHONY: lint
lint:
	$(GO) run ./cmd/simlint ./...

# atlas regenerates the golden transition atlases
# (docs/atlas/{mesi,denovo}.json) and the Table-1-style complexity
# summary (docs/atlas/complexity.md) from the controller source. Run it
# after any deliberate protocol change, then review the diff.
.PHONY: atlas
atlas:
	$(GO) run ./cmd/protocov -mode extract

# atlas-check is the CI gate over the atlas: goldens must match the
# source byte-for-byte (check), every tuple must be exercised by the
# kernel/stress grid or annotated //atlas:unreachable (cover), and the
# atlas must map cleanly onto the internal/verify abstract models
# through docs/atlas/absmap.json (crosscheck).
.PHONY: atlas-check
atlas-check:
	$(GO) run ./cmd/protocov -mode all

# isolate regenerates the ownership atlas (docs/isolation/ownership.json):
# the static cross-tile isolation certificate proving the machine is
# PDES-partitionable. Run it after any deliberate change to who owns
# what, then review the diff.
.PHONY: isolate
isolate:
	$(GO) run ./cmd/lpisolate -mode extract

# isolate-check is the CI gate over the ownership atlas: the golden must
# match the source byte-for-byte and the analysis must report zero
# unannotated findings. Audit a deliberate crossing at the site with
# `//lpisolate:boundary(reason)`; see README.
.PHONY: isolate-check
isolate-check:
	$(GO) run ./cmd/lpisolate -mode check

# liveness regenerates the protocol-liveness certificate
# (docs/liveness/waitgraph.json): the waits-for atlas over the mesi and
# denovo controllers with every liveness obligation (park wakeups,
# request answering, per-class cycle freedom, bounded backoff, stale
# ownership retirement) and its discharge site. Run it after any
# deliberate protocol change, then review the diff.
.PHONY: liveness
liveness:
	$(GO) run ./cmd/protolive -mode extract

# liveness-check is the CI gate over the liveness certificate: the
# golden must match the source byte-for-byte and the certifier must
# report zero unassumed findings. Audit a deliberate escape at the site
# with `//protolive:assume(reason)`; see docs/analysis.md.
.PHONY: liveness-check
liveness-check:
	$(GO) run ./cmd/protolive -mode check

# analyze runs the full static-analysis suite (the repo's own analyzers
# plus the three checked-in certificates) with a per-analyzer wall-time
# summary — the one target behind the CI `analyze` job.
.PHONY: analyze
analyze:
	@fail=0; \
	for t in lint atlas-check isolate-check liveness-check; do \
		start=$$(date +%s); \
		if $(MAKE) --no-print-directory $$t; then status=ok; else status=FAIL; fail=1; fi; \
		end=$$(date +%s); \
		echo "analyze: $$t $$status ($$((end-start))s)"; \
	done; \
	exit $$fail

.PHONY: build
build:
	$(GO) build ./...

.PHONY: test
test:
	$(GO) test ./...

.PHONY: race
race:
	$(GO) test -race ./...

# exp-smoke drives the kill-and-resume guarantee end to end through the
# real CLI: interrupt a grid with -stop-after, verify the resumed
# session re-executes only the missing runs, and check the merged CSV is
# byte-identical to an uninterrupted single-worker run.
.PHONY: exp-smoke
exp-smoke:
	rm -rf /tmp/denovosync-exp-smoke && mkdir -p /tmp/denovosync-exp-smoke
	$(GO) build -o /tmp/denovosync-exp-smoke/exp ./cmd/exp
	/tmp/denovosync-exp-smoke/exp run -fig fig3 -cores 16 -scale 25 \
		-journal /tmp/denovosync-exp-smoke/grid.jsonl -stop-after 4
	/tmp/denovosync-exp-smoke/exp status -fig fig3 -cores 16 -scale 25 \
		-journal /tmp/denovosync-exp-smoke/grid.jsonl
	/tmp/denovosync-exp-smoke/exp run -fig fig3 -cores 16 -scale 25 \
		-journal /tmp/denovosync-exp-smoke/grid.jsonl
	/tmp/denovosync-exp-smoke/exp merge -fig fig3 -cores 16 -scale 25 \
		-journal /tmp/denovosync-exp-smoke/grid.jsonl -o /tmp/denovosync-exp-smoke/resumed.csv
	/tmp/denovosync-exp-smoke/exp run -fig fig3 -cores 16 -scale 25 -workers 1 -quiet \
		-journal /tmp/denovosync-exp-smoke/full.jsonl -csv /tmp/denovosync-exp-smoke/full.csv
	cmp /tmp/denovosync-exp-smoke/resumed.csv /tmp/denovosync-exp-smoke/full.csv
	@echo "exp-smoke: resumed CSV is byte-identical to the uninterrupted run"

# chaos-smoke drives the chaos engine end to end through the real CLI:
# a small seed grid across all four protocol configs (every run is
# perturbed, invariant-monitored, and differentially checked against its
# unperturbed baseline), a forced-watchdog livelock that must abort with
# a structured diagnostic, a shrink of that failure to a minimal
# replayable reproducer, and a kill-and-resume byte-identity check on
# the verdict CSV.
.PHONY: chaos-smoke
chaos-smoke:
	rm -rf /tmp/denovosync-chaos-smoke && mkdir -p /tmp/denovosync-chaos-smoke
	$(GO) build -o /tmp/denovosync-chaos-smoke/chaos ./cmd/chaos
	/tmp/denovosync-chaos-smoke/chaos run -kernels tatas-counter,bar-tree \
		-seeds 4 -iters 4 -quiet -csv /tmp/denovosync-chaos-smoke/full.csv
	/tmp/denovosync-chaos-smoke/chaos watchdog-demo > /dev/null
	/tmp/denovosync-chaos-smoke/chaos shrink -kernel bar-tree -config DS -iters 4 -seed 2 \
		-fault blackhole -fault-msg 60 -watchdog 100000 -o /tmp/denovosync-chaos-smoke/repro.json
	/tmp/denovosync-chaos-smoke/chaos replay /tmp/denovosync-chaos-smoke/repro.json
	/tmp/denovosync-chaos-smoke/chaos run -kernels tatas-counter,bar-tree \
		-seeds 4 -iters 4 -quiet -journal /tmp/denovosync-chaos-smoke/grid.jsonl -stop-after 6
	/tmp/denovosync-chaos-smoke/chaos run -kernels tatas-counter,bar-tree \
		-seeds 4 -iters 4 -quiet -journal /tmp/denovosync-chaos-smoke/grid.jsonl \
		-csv /tmp/denovosync-chaos-smoke/resumed.csv
	cmp /tmp/denovosync-chaos-smoke/resumed.csv /tmp/denovosync-chaos-smoke/full.csv
	@echo "chaos-smoke: sweep clean, watchdog fired, failure shrunk + replayed, resume byte-identical"

# Golden checks: figure CSVs (Figs. 3-7 at reduced scale) and the
# cycle-exact determinism fingerprints. Regenerate deliberately with
# `make golden-update` after an intentional simulator change.
.PHONY: golden
golden:
	$(GO) test ./internal/harness -run TestGoldenFigures -count=1
	$(GO) test ./internal/machine -run 'TestDeterminism|TestBatchingMatchesEager' -count=1

.PHONY: golden-update
golden-update:
	$(GO) test ./internal/harness -run TestGoldenFigures -count=1 -update
	$(GO) test ./internal/machine -run TestDeterminismGolden -count=1 -update

# pdes-smoke is the seconds-scale PDES gate run inside `make check`: the
# serial-vs-parallel fingerprint differential on two kernels at several
# LP counts (the full battery is pdes-check).
.PHONY: pdes-smoke
pdes-smoke:
	$(GO) test ./internal/pdes -run TestSmoke -count=1

# pdes-check is the CI differential battery: every kernel x protocol
# config serial vs parallel (plus LP grouping, chaos jitter, and the
# engine edge cases) under the race detector, and the parallel golden
# figure CSV check.
.PHONY: pdes-check
pdes-check:
	$(GO) test -race ./internal/pdes ./internal/sim -count=1
	$(GO) test -race ./internal/harness -run TestGoldenFiguresParallel -count=1

# Engine + handshake micro-benchmarks (compare against BENCH_baseline.json
# on the same machine; see EXPERIMENTS.md, "Benchmark workflow").
.PHONY: bench
bench:
	$(GO) test ./internal/sim ./internal/cpu -run '^$$' -bench 'BenchmarkEngine|BenchmarkHandshake' -benchmem
	$(GO) test ./internal/pdes -run '^$$' -bench BenchmarkPDES -benchmem
	$(GO) test . -run '^$$' -bench BenchmarkEngineThroughput -benchmem

# bench-check re-runs every benchmark recorded in BENCH_baseline.json and
# fails on a tolerance-exceeding ns/op regression. Baselines are
# machine-dependent: gate on the baseline machine, or re-anchor first.
.PHONY: bench-check
bench-check:
	$(GO) run ./cmd/benchcheck

# bench-baseline prints the numbers in BENCH_baseline.json format worth
# pasting in after a deliberate engine change (higher -count for stability).
.PHONY: bench-baseline
bench-baseline:
	$(GO) test ./internal/sim ./internal/cpu -run '^$$' -bench 'BenchmarkEngine|BenchmarkHandshake' -count=5
	$(GO) test ./internal/pdes -run '^$$' -bench BenchmarkPDES -count=3
	$(GO) test . -run '^$$' -bench BenchmarkEngineThroughput -count=5

# fuzz-smoke is the scenario-fuzzer CI gate (~seconds): replay the
# checked-in corpus (testdata/corpus), require every entry to reproduce
# its recorded result digest exactly, and require the corpus alone to
# re-reach every atlas tuple the tree covers (everything not annotated
# //atlas:unreachable). A digest drift means simulator behavior changed
# without the corpus being re-recorded; an uncovered tuple means the
# corpus lost a race window.
.PHONY: fuzz-smoke
fuzz-smoke:
	$(GO) run ./cmd/scenfuzz cover

# scenfuzz-smoke drives the fuzzer end to end through the real CLI: a
# tiny seeded campaign from the checked-in corpus, interrupted with
# -stop-after and resumed with the identical command (the journal dedups
# completed scenarios by run key), then compared byte-for-byte against
# an uninterrupted run of the same campaign.
.PHONY: scenfuzz-smoke
scenfuzz-smoke:
	rm -rf /tmp/denovosync-scenfuzz-smoke && mkdir -p /tmp/denovosync-scenfuzz-smoke
	$(GO) build -o /tmp/denovosync-scenfuzz-smoke/scenfuzz ./cmd/scenfuzz
	/tmp/denovosync-scenfuzz-smoke/scenfuzz run -seed 1 -batches 2 -batch-size 4 \
		-out /tmp/denovosync-scenfuzz-smoke/killed -stop-after 10 -quiet || true
	/tmp/denovosync-scenfuzz-smoke/scenfuzz run -seed 1 -batches 2 -batch-size 4 \
		-out /tmp/denovosync-scenfuzz-smoke/killed -quiet
	/tmp/denovosync-scenfuzz-smoke/scenfuzz run -seed 1 -batches 2 -batch-size 4 \
		-out /tmp/denovosync-scenfuzz-smoke/full -quiet
	mkdir -p /tmp/denovosync-scenfuzz-smoke/killed/corpus /tmp/denovosync-scenfuzz-smoke/full/corpus \
		/tmp/denovosync-scenfuzz-smoke/killed/findings /tmp/denovosync-scenfuzz-smoke/full/findings
	diff -r /tmp/denovosync-scenfuzz-smoke/killed/corpus /tmp/denovosync-scenfuzz-smoke/full/corpus
	diff -r /tmp/denovosync-scenfuzz-smoke/killed/findings /tmp/denovosync-scenfuzz-smoke/full/findings
	@echo "scenfuzz-smoke: killed-and-resumed campaign outputs are byte-identical to the uninterrupted run"

# fabric-smoke is the seconds-scale gate over the distributed experiment
# fabric (run inside `make check`): a real grid served over loopback
# HTTP to two workers, with a worker killed mid-grid (journaled locally,
# nothing handed off) and restarted, an injected dropped + duplicated
# completion, and a coordinator restart from its journal — the merged
# figure CSV must be byte-identical to a serial single-machine run, with
# zero determinism findings. The in-package fault battery (lease expiry,
# partitioned workers, conflict escalation) runs under `make race`.
.PHONY: fabric-smoke
fabric-smoke:
	$(GO) run ./cmd/fabric smoke

# nightly-fuzz is the scheduled long-budget campaign (also runnable
# locally): seeds from the checked-in corpus, writes accepted candidates
# and findings under ./scenfuzz.out for triage.
.PHONY: nightly-fuzz
nightly-fuzz:
	$(GO) run ./cmd/scenfuzz run -seed 1 -batches 24 -batch-size 32 -out scenfuzz.out

# Short fuzzing passes over the DeNovoSync backoff-counter and MSHR
# parking properties, plus the scenario/trace decoder trust boundaries
# (seed corpus always runs under `make test`).
.PHONY: fuzz
fuzz:
	$(GO) test ./internal/denovo -fuzz FuzzBackoffCounterWrap -fuzztime 30s
	$(GO) test ./internal/denovo -fuzz FuzzMSHRSyncParking -fuzztime 30s
	$(GO) test ./internal/fuzz -fuzz FuzzScenarioDecode -fuzztime 30s
	$(GO) test ./internal/trace -fuzz FuzzTraceIngest -fuzztime 30s
