// Package denovosync is a Go reproduction of the system described in
// Sung & Adve, "DeNovoSync: Efficient Support for Arbitrary
// Synchronization without Writer-Initiated Invalidations" (ASPLOS 2015).
//
// It provides an execution-driven multicore memory-system simulator —
// in-order cores, private L1s, a shared NUCA L2, a 2D-mesh interconnect
// and DRAM controllers — with three coherence protocols:
//
//   - MESI: the writer-initiated-invalidation baseline (full-map
//     directory, blocking ownership transactions).
//   - DeNovoSync0: DeNovo word-granularity coherence where
//     synchronization reads register at the LLC (the single-reader rule).
//   - DeNovoSync: DeNovoSync0 plus the adaptive hardware backoff.
//
// Workloads are plain Go functions written against the Thread API
// (Load/Store, SyncLoad/SyncStore/CAS/FetchAdd, Compute, region-based
// SelfInvalidate). The library ships the paper's full evaluation: 24
// synchronization kernels, 13 application models, and a harness that
// regenerates every figure of the evaluation section.
//
// Quick start:
//
//	space := denovosync.NewSpace()
//	flag := space.AllocPadded(space.Region("sync"))
//	m := denovosync.NewMachine(denovosync.Params16(), denovosync.DeNovoSync, space)
//	rs, err := m.Run("handoff", func(t *denovosync.Thread) {
//	    if t.ID == 0 {
//	        t.SyncStore(flag, 1)
//	    } else if t.ID == 1 {
//	        t.SpinSyncLoadUntil(flag, func(v uint64) bool { return v == 1 })
//	    }
//	})
package denovosync

import (
	"io"

	"denovosync/internal/alloc"
	"denovosync/internal/apps"
	"denovosync/internal/barrier"
	"denovosync/internal/cpu"
	"denovosync/internal/harness"
	"denovosync/internal/kernels"
	"denovosync/internal/lockfree"
	"denovosync/internal/locks"
	"denovosync/internal/machine"
	"denovosync/internal/mem"
	"denovosync/internal/proto"
	"denovosync/internal/sim"
	"denovosync/internal/stats"
)

// Core simulator types.
type (
	// Machine is an assembled simulated system (cores, caches, L2,
	// network, memory) for one protocol. Machines are single-use: build,
	// Run once, read stats.
	Machine = machine.Machine
	// Params is the machine configuration (Table 1 of the paper).
	Params = machine.Params
	// Protocol selects MESI, DeNovoSync0 or DeNovoSync.
	Protocol = machine.Protocol
	// Workload is the per-thread body of a simulated program.
	Workload = machine.Workload
	// Thread is the API workload code is written against.
	Thread = cpu.Thread
	// Phase labels execution-time accounting (kernel/non-synch/barrier).
	Phase = cpu.Phase
	// RunStats is the result of one run: makespan, per-component cycle
	// breakdown, and per-class network traffic.
	RunStats = stats.RunStats
	// Cycle is simulated time in core clock cycles.
	Cycle = sim.Cycle
	// Addr is a simulated memory address.
	Addr = proto.Addr
	// RegionID names a software data region (self-invalidation unit).
	RegionID = proto.RegionID
	// RegionSet is a set of regions passed to SelfInvalidate.
	RegionSet = proto.RegionSet
	// Space is the simulated shared-memory allocator and region map.
	Space = alloc.Space
	// MemStore is the committed-value memory image (for pre-initializing
	// data structures and checking results).
	MemStore = mem.Store
	// MsgClass buckets network messages for traffic accounting.
	MsgClass = proto.MsgClass
)

// AllMsgClasses selects every traffic class when tracing.
const AllMsgClasses = proto.NumMsgClasses

// Protocols.
const (
	MESI        = machine.MESI
	DeNovoSync0 = machine.DeNovoSync0
	DeNovoSync  = machine.DeNovoSync
)

// Accounting phases.
const (
	PhaseKernel   = cpu.PhaseKernel
	PhaseNonSynch = cpu.PhaseNonSynch
	PhaseBarrier  = cpu.PhaseBarrier
)

// Params16 returns the paper's 16-core configuration (Table 1).
func Params16() Params { return machine.Params16() }

// Params64 returns the paper's 64-core configuration (Table 1).
func Params64() Params { return machine.Params64() }

// NewSpace creates an empty simulated address space.
func NewSpace() *Space { return alloc.New() }

// NewMachine assembles a machine over space with the given protocol.
func NewMachine(p Params, prot Protocol, space *Space) *Machine {
	return machine.New(p, prot, space)
}

// NewRegionSet builds a region set for SelfInvalidate.
func NewRegionSet(rs ...RegionID) RegionSet { return proto.NewRegionSet(rs...) }

// Synchronization library (the algorithms evaluated in the paper).
type (
	// Lock is the common lock interface (TATAS and array locks).
	Lock = locks.Lock
	// TATASLock is a Test-and-Test-and-Set spin lock.
	TATASLock = locks.TATAS
	// ArrayLock is an Anderson-style array queuing lock.
	ArrayLock = locks.Array
	// MCSLock is the Mellor-Crummey-Scott list-based queuing lock.
	MCSLock = locks.MCS
	// Barrier is the common barrier interface.
	Barrier = barrier.Barrier
	// TreeBarrier is a static tree barrier (configurable fan-in/out).
	TreeBarrier = barrier.Tree
	// CentralBarrier is a centralized sense-reversing barrier.
	CentralBarrier = barrier.Central
	// DisseminationBarrier is the log-round dissemination barrier.
	DisseminationBarrier = barrier.Dissemination
	// MSQueue is the Michael-Scott non-blocking queue.
	MSQueue = lockfree.MSQueue
	// PLJQueue is the Prakash-Lee-Johnson counted-pointer queue.
	PLJQueue = lockfree.PLJQueue
	// TreiberStack is Treiber's non-blocking stack.
	TreiberStack = lockfree.TreiberStack
	// HerlihyStack is Herlihy's small-object-copy stack.
	HerlihyStack = lockfree.HerlihyStack
	// HerlihyHeap is Herlihy's small-object-copy priority queue.
	HerlihyHeap = lockfree.HerlihyHeap
	// FAICounter is a fetch-and-increment counter.
	FAICounter = lockfree.FAICounter
)

// NewTATASLock allocates a TATAS lock whose critical sections protect the
// given regions (self-invalidated at acquire on DeNovo). padded places the
// lock word on its own cache line.
func NewTATASLock(s *Space, region RegionID, protect RegionSet, padded bool) *TATASLock {
	return locks.NewTATAS(s, region, protect, padded)
}

// NewArrayLock allocates an n-slot array queuing lock. Write 1 to
// SlotAddr(0) in the machine's MemStore before running (or call Init from
// one thread).
func NewArrayLock(s *Space, region RegionID, protect RegionSet, n int) *ArrayLock {
	return locks.NewArray(s, region, protect, n)
}

// NewMCSLock allocates an MCS list-based queuing lock for up to n threads.
func NewMCSLock(s *Space, region RegionID, protect RegionSet, n int) *MCSLock {
	return locks.NewMCS(s, region, protect, n)
}

// NewDisseminationBarrier allocates a dissemination barrier for n threads.
func NewDisseminationBarrier(s *Space, region RegionID, protect RegionSet, n int) *DisseminationBarrier {
	return barrier.NewDissemination(s, region, protect, n)
}

// NewTreeBarrier allocates a static tree barrier for n threads.
func NewTreeBarrier(s *Space, region RegionID, protect RegionSet, n, fanIn, fanOut int) *TreeBarrier {
	return barrier.NewTree(s, region, protect, n, fanIn, fanOut)
}

// NewCentralBarrier allocates a centralized sense-reversing barrier.
func NewCentralBarrier(s *Space, region RegionID, protect RegionSet, n int) *CentralBarrier {
	return barrier.NewCentral(s, region, protect, n)
}

// NewMSQueue allocates a Michael-Scott queue (dummy node pre-initialized
// in st).
func NewMSQueue(s *Space, st *MemStore) *MSQueue { return lockfree.NewMSQueue(s, st) }

// NewPLJQueue allocates a PLJ counted-pointer queue.
func NewPLJQueue(s *Space, st *MemStore) *PLJQueue { return lockfree.NewPLJQueue(s, st) }

// NewTreiberStack allocates a Treiber stack.
func NewTreiberStack(s *Space, st *MemStore) *TreiberStack { return lockfree.NewTreiberStack(s, st) }

// NewHerlihyStack allocates a Herlihy small-object-copy stack.
func NewHerlihyStack(s *Space, st *MemStore, capacity int) *HerlihyStack {
	return lockfree.NewHerlihyStack(s, st, capacity)
}

// NewHerlihyHeap allocates a Herlihy small-object-copy heap.
func NewHerlihyHeap(s *Space, st *MemStore, capacity int) *HerlihyHeap {
	return lockfree.NewHerlihyHeap(s, st, capacity)
}

// NewFAICounter allocates a fetch-and-increment counter.
func NewFAICounter(s *Space, st *MemStore) *FAICounter { return lockfree.NewFAICounter(s, st) }

// Evaluation workloads and harness.
type (
	// Kernel is one of the paper's 24 synchronization kernels (§5.3.1).
	Kernel = kernels.Kernel
	// KernelConfig tunes a kernel run (iterations, backoff, ablations).
	KernelConfig = kernels.Config
	// KernelGroup classifies kernels by figure.
	KernelGroup = kernels.Group
	// App is one of the 13 application models (§5.3.2).
	App = apps.App
	// Figure is a reproduced figure: workloads x protocols results with
	// normalized rendering.
	Figure = harness.Figure
	// FigureRow is one (workload, protocol) result within a Figure.
	FigureRow = harness.Row
	// FigureOptions tunes a reproduction run (workload scale).
	FigureOptions = harness.Options
)

// Kernel groups (one per kernel figure).
const (
	KernelsTATAS       = kernels.LockTATAS
	KernelsArrayLock   = kernels.LockArray
	KernelsNonBlocking = kernels.NonBlocking
	KernelsBarrier     = kernels.Barriers
)

// Kernels returns the paper's 24 synchronization kernels.
func Kernels() []Kernel { return kernels.All() }

// KernelByID finds a kernel by slug (e.g. "tatas-single-q").
func KernelByID(id string) (Kernel, bool) { return kernels.ByID(id) }

// RunKernel runs kernel k on machine m with the paper's driver protocol.
func RunKernel(k Kernel, m *Machine, c KernelConfig) (*RunStats, error) {
	return kernels.Run(k, m, c)
}

// Apps returns the 13 Figure 7 application models.
func Apps() []App { return apps.All() }

// AppByID finds an application model by slug (e.g. "canneal").
func AppByID(id string) (App, bool) { return apps.ByID(id) }

// RunApp runs application a on machine m; scale > 1 shrinks the workload.
func RunApp(a App, m *Machine, scale int) (*RunStats, error) {
	return apps.Run(a, m, scale)
}

// ClaimsFor returns the paper-claim set matching a reproduced figure.
func ClaimsFor(f *Figure) []harness.Claim { return harness.ClaimsFor(f) }

// CheckClaims evaluates a reproduced figure against the paper's
// qualitative claims (§7), writing one HOLDS/DEVIATES verdict per claim.
func CheckClaims(f *Figure, w io.Writer) (pass, deviations int) {
	return harness.CheckClaims(f, w)
}

// Figure reproduction entry points (see EXPERIMENTS.md).
var (
	Fig3                   = harness.Fig3
	Fig4                   = harness.Fig4
	Fig5                   = harness.Fig5
	Fig6                   = harness.Fig6
	Fig7                   = harness.Fig7
	AblationSWBackoff      = harness.AblationSWBackoff
	AblationPadding        = harness.AblationPadding
	AblationEqChecks       = harness.AblationEqChecks
	AblationSignatures     = harness.AblationSignatures
	AblationInvalidateAll  = harness.AblationInvalidateAll
	AblationLinkContention = harness.AblationLinkContention
	AblationAltLocks       = harness.AblationAltLocks
	AblationGranularity    = harness.AblationGranularity
	AblationBackoffParams  = harness.AblationBackoffParams
)
