module denovosync

go 1.22
