// Non-blocking queue throughput: run the Michael-Scott queue at rising
// thread counts on all three protocols and print ops/kilocycle — the
// experiment behind Figure 5's M-S queue bars, as a self-contained
// program. Shows DeNovoSync0's registration ping-pong appearing at high
// contention and DeNovoSync's hardware backoff recovering it.
package main

import (
	"fmt"

	"denovosync"
)

func main() {
	fmt.Println("Michael-Scott queue throughput (ops per 1000 cycles, higher is better)")
	fmt.Println()
	fmt.Printf("%-12s", "threads")
	protos := []denovosync.Protocol{denovosync.MESI, denovosync.DeNovoSync0, denovosync.DeNovoSync}
	for _, p := range protos {
		fmt.Printf("%14s", p)
	}
	fmt.Println()

	for _, threads := range []int{2, 4, 8, 16} {
		fmt.Printf("%-12d", threads)
		for _, prot := range protos {
			fmt.Printf("%14.2f", throughput(prot, threads))
		}
		fmt.Println()
	}
}

func throughput(prot denovosync.Protocol, threads int) float64 {
	const opsPerThread = 40
	space := denovosync.NewSpace()
	m := denovosync.NewMachine(denovosync.Params16(), prot, space)
	q := denovosync.NewMSQueue(space, m.Store)
	rs, err := m.Run("msqueue", func(t *denovosync.Thread) {
		if t.ID >= threads {
			return
		}
		for i := 0; i < opsPerThread; i++ {
			q.Enqueue(t, uint64(t.ID*1000+i))
			q.Dequeue(t)
		}
	})
	if err != nil {
		panic(err)
	}
	totalOps := float64(2 * opsPerThread * threads)
	return totalOps / float64(rs.ExecTime) * 1000
}
