// Pipeline parallelism (the ferret pattern of §7.2): a three-stage
// pipeline over lock-protected queues built directly on the public API,
// compared across protocols. Also demonstrates heterogeneous per-thread
// workloads and region-based self-invalidation for the handed-off data.
package main

import (
	"fmt"

	"denovosync"
)

const (
	stages      = 4 // producer, two filters, consumer (4 threads each)
	itemsPerSrc = 12
)

func main() {
	fmt.Println("4-stage pipeline over lock-protected queues (16 cores)")
	fmt.Println()
	for _, prot := range []denovosync.Protocol{denovosync.MESI, denovosync.DeNovoSync} {
		exec, traffic := run(prot)
		fmt.Printf("%-12s exec %8d cycles   traffic %8d flit-hops\n", prot, exec, traffic)
	}
}

type queue struct {
	lock       *denovosync.TATASLock
	head, tail denovosync.Addr
	buf        denovosync.Addr
	cap        int
}

func newQueue(space *denovosync.Space, name string, capacity int) *queue {
	region := space.Region("q." + name)
	return &queue{
		lock: denovosync.NewTATASLock(space, space.Region("qlk."+name),
			denovosync.NewRegionSet(region), true),
		head: space.AllocAligned(1, region),
		tail: space.AllocAligned(1, region),
		buf:  space.AllocAligned(capacity, region),
		cap:  capacity,
	}
}

func (q *queue) tryPut(t *denovosync.Thread, v uint64) bool {
	tk := q.lock.Acquire(t)
	defer q.lock.Release(t, tk)
	h, tl := t.Load(q.head), t.Load(q.tail)
	if tl-h >= uint64(q.cap) {
		return false
	}
	t.Store(q.buf+denovosync.Addr(int(tl)%q.cap*4), v)
	t.Store(q.tail, tl+1)
	t.Fence()
	return true
}

func (q *queue) tryGet(t *denovosync.Thread) (uint64, bool) {
	tk := q.lock.Acquire(t)
	defer q.lock.Release(t, tk)
	h, tl := t.Load(q.head), t.Load(q.tail)
	if h == tl {
		return 0, false
	}
	v := t.Load(q.buf + denovosync.Addr(int(h)%q.cap*4))
	t.Store(q.head, h+1)
	t.Fence()
	return v, true
}

func run(prot denovosync.Protocol) (denovosync.Cycle, uint64) {
	space := denovosync.NewSpace()
	m := denovosync.NewMachine(denovosync.Params16(), prot, space)
	qs := []*queue{newQueue(space, "01", 8), newQueue(space, "12", 8), newQueue(space, "23", 8)}
	ctrR := space.Region("ctr")
	// processed[k] counts items completed by stage k+1: every thread of a
	// stage exits once its stage has handled the full item count.
	processed := []denovosync.Addr{space.AllocPadded(ctrR), space.AllocPadded(ctrR), space.AllocPadded(ctrR)}
	producers := 16 / stages
	total := uint64(producers * itemsPerSrc)

	rs, err := m.RunThreads("pipeline", func(i int) denovosync.Workload {
		stage := i % stages
		return func(t *denovosync.Thread) {
			if stage == 0 {
				for it := 0; it < itemsPerSrc; it++ {
					t.Compute(300)
					for !qs[0].tryPut(t, uint64(i*100+it)) {
						t.SWBackoff(150)
					}
				}
				return
			}
			in := qs[stage-1]
			ctr := processed[stage-1]
			cost := []denovosync.Cycle{0, 500, 400, 200}[stage]
			for t.SyncLoad(ctr) < total {
				v, ok := in.tryGet(t)
				if !ok {
					t.SWBackoff(150)
					continue
				}
				t.Compute(cost)
				if stage < stages-1 {
					for !qs[stage].tryPut(t, v*2) {
						t.SWBackoff(150)
					}
				}
				t.FetchAdd(ctr, 1)
			}
		}
	})
	if err != nil {
		panic(err)
	}
	return rs.ExecTime, rs.TotalTraffic
}
