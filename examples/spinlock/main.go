// Spinlock contention study: TATAS versus Anderson array locks under
// rising contention, on MESI and DeNovoSync — reproducing the §6.1
// analysis interactively. TATAS pays MESI's invalidation storm and
// DeNovo's read-registration transfers; the array lock's single reader
// per slot is friendly to both.
package main

import (
	"fmt"

	"denovosync"
)

func main() {
	fmt.Println("Lock handoff latency under contention (16-core machine)")
	fmt.Println("cycles per critical section, lower is better")
	fmt.Println()
	fmt.Printf("%-10s %-12s %10s %10s\n", "lock", "protocol", "2 threads", "16 threads")

	for _, lockKind := range []string{"tatas", "array"} {
		for _, prot := range []denovosync.Protocol{denovosync.MESI, denovosync.DeNovoSync} {
			low := run(lockKind, prot, 2)
			high := run(lockKind, prot, 16)
			fmt.Printf("%-10s %-12s %10d %10d\n", lockKind, prot, low, high)
		}
	}
	fmt.Println()
	fmt.Println("Note how the TATAS handoff degrades with waiters while the array")
	fmt.Println("lock stays flat, and how DeNovoSync avoids MESI's invalidation cost.")
}

// run returns average cycles per critical section with `contenders`
// threads fighting for one lock (the rest idle).
func run(kind string, prot denovosync.Protocol, contenders int) uint64 {
	const iters = 30
	space := denovosync.NewSpace()
	dataRegion := space.Region("data")
	counter := space.AllocAligned(1, dataRegion)
	protect := denovosync.NewRegionSet(dataRegion)

	var lock denovosync.Lock
	tatas := denovosync.NewTATASLock(space, space.Region("lk"), protect, true)
	array := denovosync.NewArrayLock(space, space.Region("lk"), protect, 16)
	if kind == "tatas" {
		lock = tatas
	} else {
		lock = array
	}

	m := denovosync.NewMachine(denovosync.Params16(), prot, space)
	if kind == "array" {
		m.Store.Write(array.SlotAddr(0), 1)
	}
	rs, err := m.Run("spinlock", func(t *denovosync.Thread) {
		if t.ID >= contenders {
			return
		}
		for i := 0; i < iters; i++ {
			tk := lock.Acquire(t)
			v := t.Load(counter)
			t.Compute(20)
			t.Store(counter, v+1)
			t.Fence()
			lock.Release(t, tk)
			t.Compute(t.RNG.Cycles(100, 300))
		}
	})
	if err != nil {
		panic(err)
	}
	if got := m.Store.Read(counter); got != uint64(contenders*iters) {
		panic(fmt.Sprintf("mutual exclusion broken: %d", got))
	}
	return uint64(rs.ExecTime) / uint64(iters*contenders)
}
