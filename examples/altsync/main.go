// Alternative synchronization algorithms: compare every lock (TATAS,
// Anderson array, MCS) and every barrier (centralized, binary tree,
// n-ary tree, dissemination) in the library across the three protocols —
// the §6 qualitative analysis, extended to the algorithms the paper's
// references cover but its figures do not.
package main

import (
	"fmt"

	"denovosync"
)

const iters = 25

func main() {
	fmt.Println("Lock handoff under full contention (16 threads, cycles/CS; lower is better)")
	fmt.Printf("%-8s %12s %14s %12s\n", "lock", "MESI", "DeNovoSync0", "DeNovoSync")
	for _, kind := range []string{"tatas", "array", "mcs"} {
		fmt.Printf("%-8s", kind)
		for _, prot := range []denovosync.Protocol{denovosync.MESI, denovosync.DeNovoSync0, denovosync.DeNovoSync} {
			fmt.Printf(" %12d", lockRun(kind, prot))
		}
		fmt.Println()
	}

	fmt.Println()
	fmt.Println("Barrier episode latency, unbalanced arrivals (16 threads, cycles/episode)")
	fmt.Printf("%-14s %12s %14s %12s\n", "barrier", "MESI", "DeNovoSync0", "DeNovoSync")
	for _, kind := range []string{"central", "tree", "n-ary", "dissemination"} {
		fmt.Printf("%-14s", kind)
		for _, prot := range []denovosync.Protocol{denovosync.MESI, denovosync.DeNovoSync0, denovosync.DeNovoSync} {
			fmt.Printf(" %12d", barrierRun(kind, prot))
		}
		fmt.Println()
	}
}

func lockRun(kind string, prot denovosync.Protocol) uint64 {
	space := denovosync.NewSpace()
	region := space.Region("data")
	ctr := space.AllocAligned(1, region)
	protect := denovosync.NewRegionSet(region)
	var lock denovosync.Lock
	switch kind {
	case "tatas":
		lock = denovosync.NewTATASLock(space, space.Region("lk"), protect, true)
	case "array":
		al := denovosync.NewArrayLock(space, space.Region("lk"), protect, 16)
		defer func() {}()
		lock = al
	case "mcs":
		lock = denovosync.NewMCSLock(space, space.Region("lk"), protect, 16)
	}
	m := denovosync.NewMachine(denovosync.Params16(), prot, space)
	if al, ok := lock.(*denovosync.ArrayLock); ok {
		m.Store.Write(al.SlotAddr(0), 1)
	}
	rs, err := m.Run("lock-"+kind, func(t *denovosync.Thread) {
		for i := 0; i < iters; i++ {
			tk := lock.Acquire(t)
			v := t.Load(ctr)
			t.Compute(20)
			t.Store(ctr, v+1)
			t.Fence()
			lock.Release(t, tk)
			t.Compute(t.RNG.Cycles(100, 400))
		}
	})
	if err != nil {
		panic(err)
	}
	if got := m.Store.Read(ctr); got != 16*iters {
		panic(fmt.Sprintf("%s on %v: mutual exclusion broken: %d", kind, prot, got))
	}
	return uint64(rs.ExecTime) / uint64(16*iters)
}

func barrierRun(kind string, prot denovosync.Protocol) uint64 {
	const episodes = 12
	space := denovosync.NewSpace()
	var b denovosync.Barrier
	switch kind {
	case "central":
		b = denovosync.NewCentralBarrier(space, space.Region("bar"), 0, 16)
	case "tree":
		b = denovosync.NewTreeBarrier(space, space.Region("bar"), 0, 16, 2, 2)
	case "n-ary":
		b = denovosync.NewTreeBarrier(space, space.Region("bar"), 0, 16, 4, 2)
	case "dissemination":
		b = denovosync.NewDisseminationBarrier(space, space.Region("bar"), 0, 16)
	}
	m := denovosync.NewMachine(denovosync.Params16(), prot, space)
	rs, err := m.Run("bar-"+kind, func(t *denovosync.Thread) {
		for e := 0; e < episodes; e++ {
			t.Compute(t.RNG.Cycles(200, 2000)) // unbalanced arrivals
			b.Wait(t)
		}
	})
	if err != nil {
		panic(err)
	}
	return uint64(rs.ExecTime) / episodes
}
