// Quickstart: build a 16-core machine, run a Michael-Scott queue
// producer/consumer workload on all three protocols, and compare the
// execution time and network traffic — the one-minute tour of the
// library.
package main

import (
	"fmt"

	"denovosync"
)

func main() {
	fmt.Println("DeNovoSync quickstart: 16 cores, Michael-Scott queue, 8 ops/thread")
	fmt.Println()

	for _, prot := range []denovosync.Protocol{
		denovosync.MESI, denovosync.DeNovoSync0, denovosync.DeNovoSync,
	} {
		space := denovosync.NewSpace()
		m := denovosync.NewMachine(denovosync.Params16(), prot, space)
		q := denovosync.NewMSQueue(space, m.Store)

		rs, err := m.Run("quickstart", func(t *denovosync.Thread) {
			for i := 0; i < 8; i++ {
				q.Enqueue(t, uint64(t.ID*100+i))
				t.Compute(t.RNG.Cycles(200, 600)) // think time
				if v, ok := q.Dequeue(t); ok {
					_ = v
				}
			}
		})
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-12s exec %7d cycles   traffic %8d flit-hops   L1 %5d hits / %5d misses\n",
			prot, rs.ExecTime, rs.TotalTraffic, rs.L1Hits, rs.L1Misses)
	}

	fmt.Println()
	fmt.Println("DeNovo needs no invalidation messages or sharer lists; DeNovoSync's")
	fmt.Println("hardware backoff additionally damps sync-read registration ping-pong.")
}
